let log_src = Logs.Src.create "tropic.worker" ~doc:"TROPIC worker"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Full | Logical_only of float

type t = {
  wname : string;
  client : Coord.Client.t;
  mode : mode;
  devices : Physical.device_lookup;
  sim : Des.Sim.t;
  retry : Physical.retry_policy;
  mutable stopped : bool;
  mutable procs : Des.Proc.t list;
  mutable n_executed : int;
  mutable n_committed : int;
}

let create ?(retry = Physical.no_retry) ~name ~client ~mode ~devices ~sim () =
  {
    wname = name;
    client;
    mode;
    devices;
    sim;
    retry;
    stopped = false;
    procs = [];
    n_executed = 0;
    n_committed = 0;
  }

let name w = w.wname
let executed w = w.n_executed
let committed w = w.n_committed

let check_signal w txn_id () =
  match Coord.Client.get w.client (Proto.signal_key txn_id) with
  | Some ("TERM", _) -> `Term
  | Some ("KILL", _) -> `Kill
  | Some _ | None -> `Go

let execute_txn w txn_id =
  match Coord.Client.get w.client (Txn.record_key txn_id) with
  | None ->
    Log.err (fun m -> m "%s: no record for txn %d" w.wname txn_id);
    None
  | Some (value, _) ->
    (match Txn.of_string value with
     | Error reason ->
       Log.err (fun m -> m "%s: corrupt record for txn %d: %s" w.wname txn_id reason);
       None
     | Ok txn ->
       if txn.Txn.state <> Txn.Started then None
       else begin
         let counters = Physical.fresh_counters () in
         let outcome =
           match w.mode with
           | Logical_only delay ->
             if delay > 0. then Des.Proc.sleep delay;
             Proto.Phy_committed
           | Full ->
             Physical.execute ~devices:w.devices
               ~check_signal:(check_signal w txn_id)
               ~policy:w.retry ~rng:(Des.Sim.rng w.sim) ~sim:w.sim ~counters
               txn.Txn.log
         in
         w.n_executed <- w.n_executed + 1;
         if outcome = Proto.Phy_committed then
           w.n_committed <- w.n_committed + 1;
         let exec =
           {
             Proto.retries = counters.Physical.retries;
             transient_failures = counters.Physical.transient_failures;
             timeouts = counters.Physical.timeouts;
           }
         in
         Some (outcome, exec)
       end)

(* Take protocol: claim with an ephemeral executing-marker before deleting
   the queue item, so a recovering controller never re-queues a transaction
   some worker is already executing. *)
let take_and_run w (key, payload) =
  (match int_of_string_opt payload with
     | None -> ignore (Coord.Client.delete w.client ~key ())
     | Some txn_id ->
       let marker = Proto.executing_key txn_id in
       ignore
         (Coord.Client.create w.client ~ephemeral:true ~key:marker ~value:w.wname ());
       (match Coord.Client.delete w.client ~key () with
        | Error _ ->
          (* Another worker won the take; withdraw the claim if it is ours. *)
          (match Coord.Client.get w.client marker with
           | Some (owner, _) when String.equal owner w.wname ->
             ignore (Coord.Client.delete w.client ~key:marker ())
           | Some _ | None -> ())
        | Ok () ->
          (match execute_txn w txn_id with
           | Some (outcome, exec) ->
             ignore
               (Coord.Recipes.enqueue w.client ~queue:Proto.input_queue
                  (Proto.input_to_string
                     (Proto.Result { txn_id; outcome; exec })))
           | None -> ());
          ignore (Coord.Client.delete w.client ~key:marker ())))

let run w () =
  while not w.stopped do
    match Coord.Client.first_child_value w.client Proto.phy_queue with
    | Some item -> take_and_run w item
    | None ->
      Coord.Client.watch_children w.client Proto.phy_queue;
      (match Coord.Client.first_child_value w.client Proto.phy_queue with
       | Some item -> take_and_run w item
       | None -> ignore (Coord.Client.await_change w.client ~timeout:1.0))
  done

let start w =
  let p = Des.Proc.spawn ~name:w.wname w.sim (run w) in
  w.procs <- [ p ]

let crash w =
  w.stopped <- true;
  List.iter Des.Proc.kill w.procs;
  w.procs <- [];
  Coord.Client.close w.client
