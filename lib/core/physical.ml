type device_lookup = Data.Path.t -> Devices.Device.t option
type signal_check = unit -> [ `Go | `Term | `Kill ]

let lookup_of_list devices =
  let table = Hashtbl.create (max 16 (List.length devices)) in
  List.iter
    (fun device ->
      Hashtbl.replace table
        (Data.Path.to_string (Devices.Device.root device))
        device)
    devices;
  fun path ->
    let rec search p =
      match Hashtbl.find_opt table (Data.Path.to_string p) with
      | Some device -> Some device
      | None ->
        (match Data.Path.parent p with
         | Some parent -> search parent
         | None -> None)
    in
    search path

let invoke_record ~devices (record : Xlog.record) ~action ~args =
  match devices record.Xlog.path with
  | None ->
    Error
      (Printf.sprintf "no device for %s"
         (Data.Path.to_string record.Xlog.path))
  | Some device -> Devices.Device.invoke device ~action ~args

(* Undo the given (already executed) records, newest first.  Returns the
   index of the first record whose undo failed, if any. *)
let undo_executed ~devices executed =
  let rec go = function
    | [] -> Ok ()
    | (record : Xlog.record) :: rest ->
      (match record.Xlog.undo with
       | None -> Error (record.Xlog.index, "irreversible action")
       | Some undo_action ->
         (match
            invoke_record ~devices record ~action:undo_action
              ~args:record.Xlog.undo_args
          with
          | Ok () -> go rest
          | Error reason -> Error (record.Xlog.index, reason)))
  in
  go executed

let execute ~devices ?(check_signal = fun () -> `Go) log =
  (* [executed] accumulates completed records, newest first. *)
  let rec run executed = function
    | [] -> Proto.Phy_committed
    | (record : Xlog.record) :: rest ->
      (match check_signal () with
       | `Kill -> Proto.Phy_failed "killed by operator"
       | `Term -> roll_back executed "terminated by operator"
       | `Go ->
         (match
            invoke_record ~devices record ~action:record.Xlog.action
              ~args:record.Xlog.args
          with
          | Ok () -> run (record :: executed) rest
          | Error reason ->
            roll_back executed
              (Printf.sprintf "action #%d %s: %s" record.Xlog.index
                 record.Xlog.action reason)))
  and roll_back executed reason =
    match undo_executed ~devices executed with
    | Ok () -> Proto.Phy_aborted reason
    | Error (index, undo_reason) ->
      Proto.Phy_failed
        (Printf.sprintf "%s; undo #%d failed: %s" reason index undo_reason)
  in
  run [] log
