type device_lookup = Data.Path.t -> Devices.Device.t option
type signal_check = unit -> [ `Go | `Term | `Kill ]

type retry_policy = {
  max_attempts : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_cap : float;
  jitter : float;
  deadline : float option;
}

let no_retry =
  {
    max_attempts = 1;
    backoff_base = 0.;
    backoff_factor = 2.;
    backoff_cap = 0.;
    jitter = 0.;
    deadline = None;
  }

let default_retry =
  {
    max_attempts = 4;
    backoff_base = 0.5;
    backoff_factor = 2.;
    backoff_cap = 8.;
    jitter = 0.5;
    deadline = Some 30.;
  }

type counters = {
  mutable retries : int;
  mutable transient_failures : int;
  mutable timeouts : int;
  mutable undo_s : float;
}

let fresh_counters () =
  { retries = 0; transient_failures = 0; timeouts = 0; undo_s = 0. }

let backoff_nominal policy n =
  let n = max 1 n in
  Float.min policy.backoff_cap
    (policy.backoff_base *. (policy.backoff_factor ** float_of_int (n - 1)))

let backoff_delay policy ?rng n =
  let nominal = backoff_nominal policy n in
  match rng with
  | Some rng when policy.jitter > 0. ->
    nominal *. (1. +. Des.Dist.uniform rng ~lo:(-.policy.jitter) ~hi:policy.jitter)
  | _ -> nominal

let lookup_of_list devices =
  let table = Hashtbl.create (max 16 (List.length devices)) in
  List.iter
    (fun device ->
      Hashtbl.replace table
        (Data.Path.to_string (Devices.Device.root device))
        device)
    devices;
  fun path ->
    let rec search p =
      match Hashtbl.find_opt table (Data.Path.to_string p) with
      | Some device -> Some device
      | None ->
        (match Data.Path.parent p with
         | Some parent -> search parent
         | None -> None)
    in
    search path

let invoke_record ~devices (record : Xlog.record) ~action ~args =
  match devices record.Xlog.path with
  | None ->
    Error
      {
        Devices.Device.reason =
          Printf.sprintf "no device for %s"
            (Data.Path.to_string record.Xlog.path);
        transient = false;
      }
  | Some device -> Devices.Device.invoke device ~action ~args

(* Run one invocation under the policy's per-action deadline.  The
   invocation runs in a child process so a hung device parks the child,
   not the worker: on timeout the child is killed (unwinding the hang)
   and the attempt is reported as a retryable timeout.  Requires [sim];
   without it the invocation runs inline with no deadline. *)
let invoke_deadline ~devices ~sim ~deadline ~counters (record : Xlog.record)
    ~action ~args =
  match sim, deadline with
  | Some sim, Some limit ->
    let reply = Des.Channel.create ~name:"phy-deadline" () in
    let child =
      Des.Proc.spawn ~name:(Printf.sprintf "phy-action:%s" action) sim
        (fun () ->
          Des.Channel.send reply (invoke_record ~devices record ~action ~args))
    in
    (match Des.Channel.recv_timeout reply ~timeout:limit with
     | Some result -> result
     | None ->
       Des.Proc.kill child;
       (match counters with
        | Some c -> c.timeouts <- c.timeouts + 1
        | None -> ());
       Error
         {
           Devices.Device.reason =
             Printf.sprintf "action %s exceeded %.1fs deadline" action limit;
           transient = true;
         })
  | _ -> invoke_record ~devices record ~action ~args

(* Outcome of one logical action after retries: success, a definitive
   failure (permanent error or attempts exhausted), or an operator signal
   observed while backing off. *)
type attempt_outcome =
  | A_ok
  | A_error of string
  | A_signal of [ `Term | `Kill ]

(* Spans around attempts and backoffs.  [tracer] is the recorder plus the
   owning transaction id and the worker's lane; spans auto-parent onto
   the innermost open span of that transaction in the same lane (the
   worker's replay or undo span). *)
let trace_span tracer ~cat ~name ~attrs =
  Option.map
    (fun (tr, txn, lane) ->
      (tr, Trace.begin_span tr ~txn ~lane ~cat ~name ~attrs ()))
    tracer

let trace_end opened ~attrs =
  Option.iter (fun (tr, sid) -> Trace.end_span tr ~attrs sid) opened

(* A worker kill unwinds straight out of a hung device invocation, so any
   span open across an invocation must be closed on the way out or it
   outlives its parent (the replay span, closed by the worker's own
   unwind handler).  The thunk is expected to close [opened] itself on
   every normal path; [end_span] is idempotent, so that close wins and
   the finalizer's [outcome=interrupted] only lands on an unwind. *)
let protect_span opened f =
  Fun.protect
    ~finally:(fun () -> trace_end opened ~attrs:[ ("outcome", "interrupted") ])
    f

let invoke_with_retry ~devices ~policy ~rng ~sim ~counters ~check_signal
    ~tracer (record : Xlog.record) ~action ~args =
  let count f = match counters with Some c -> f c | None -> () in
  let rec attempt n =
    let opened =
      trace_span tracer ~cat:"physical"
        ~name:("action:" ^ action)
        ~attrs:
          [ ("index", string_of_int record.Xlog.index);
            ("attempt", string_of_int n) ]
    in
    let result =
      protect_span opened (fun () ->
          match
            invoke_deadline ~devices ~sim ~deadline:policy.deadline ~counters
              record ~action ~args
          with
          | Ok () ->
            trace_end opened ~attrs:[ ("outcome", "ok") ];
            Ok ()
          | Error err ->
            trace_end opened
              ~attrs:
                [ ("outcome", "error"); ("reason", err.Devices.Device.reason);
                  ("transient", string_of_bool err.Devices.Device.transient)
                ];
            Error err)
    in
    match result with
    | Ok () -> A_ok
    | Error err ->
      if err.Devices.Device.transient then
        count (fun c -> c.transient_failures <- c.transient_failures + 1);
      if err.Devices.Device.transient && n < policy.max_attempts then begin
        count (fun c -> c.retries <- c.retries + 1);
        (* Backing off takes simulated time only when we have a clock to
           sleep on; instant-timing unit tests retry immediately. *)
        (match sim with
         | Some _ ->
           let delay = backoff_delay policy ?rng n in
           let backoff =
             trace_span tracer ~cat:"physical" ~name:"backoff"
               ~attrs:
                 [ ("attempt", string_of_int n);
                   ("delay", Printf.sprintf "%.3f" delay) ]
           in
           protect_span backoff (fun () ->
               Des.Proc.sleep delay;
               trace_end backoff ~attrs:[])
         | None -> ());
        match check_signal () with
        | `Go -> attempt (n + 1)
        | (`Term | `Kill) as s -> A_signal s
      end
      else
        A_error
          (if n > 1 then
             Printf.sprintf "%s (after %d attempts)"
               err.Devices.Device.reason n
           else err.Devices.Device.reason)
  in
  attempt 1

(* Undo the given (already executed) records, newest first.  Returns the
   index of the first record whose undo failed, if any.  Undos ignore
   operator signals (they already serve a Term) but keep the retry policy
   and deadline, so a transient blip or hang during rollback does not
   convert a clean abort into a Failed transaction. *)
let undo_executed ~devices ?(policy = no_retry) ?rng ?sim ?counters ?tracer
    ?on_progress executed =
  let progress i = match on_progress with Some f -> f i | None -> () in
  let rec go = function
    | [] -> Ok ()
    | (record : Xlog.record) :: rest ->
      (match record.Xlog.undo with
       | None -> Error (record.Xlog.index, "irreversible action")
       | Some undo_action ->
         let opened =
           trace_span tracer ~cat:"undo"
             ~name:("undo:" ^ undo_action)
             ~attrs:[ ("index", string_of_int record.Xlog.index) ]
         in
         (match
            protect_span opened (fun () ->
                match
                  invoke_with_retry ~devices ~policy ~rng ~sim ~counters
                    ~tracer:None
                    ~check_signal:(fun () -> `Go)
                    record ~action:undo_action ~args:record.Xlog.undo_args
                with
                | A_ok ->
                  trace_end opened ~attrs:[ ("outcome", "ok") ];
                  Ok ()
                | A_error reason ->
                  trace_end opened
                    ~attrs:[ ("outcome", "error"); ("reason", reason) ];
                  Error reason
                | A_signal _ -> assert false)
          with
          | Ok () ->
            (* The record's effect is off the device: move the replay
               cursor below it so a crash mid-rollback does not resume
               past work that has been unwound. *)
            progress (record.Xlog.index - 1);
            go rest
          | Error reason -> Error (record.Xlog.index, reason)))
  in
  go executed

let execute ~devices ?(check_signal = fun () -> `Go) ?(policy = no_retry) ?rng
    ?sim ?counters ?tracer ?(skip = 0) ?on_progress
    ?(confirm_undo = fun () -> true) log =
  let progress i = match on_progress with Some f -> f i | None -> () in
  (* [executed] accumulates completed records, newest first. *)
  let rec run executed = function
    | [] -> Proto.Phy_committed
    | (record : Xlog.record) :: rest ->
      (match check_signal () with
       | `Kill -> Proto.Phy_failed "killed by operator"
       | `Term -> roll_back executed "terminated by operator"
       | `Go ->
         (match
            invoke_with_retry ~devices ~policy ~rng ~sim ~counters ~tracer
              ~check_signal record ~action:record.Xlog.action
              ~args:record.Xlog.args
          with
          | A_ok ->
            progress record.Xlog.index;
            run (record :: executed) rest
          | A_signal `Kill -> Proto.Phy_failed "killed by operator"
          | A_signal `Term -> roll_back executed "terminated by operator"
          | A_error reason ->
            roll_back executed
              (Printf.sprintf "action #%d %s: %s" record.Xlog.index
                 record.Xlog.action reason)))
  and roll_back executed reason =
    (* Two workers can replay the same transaction when an executing
       marker expires under a live session (fail-over semantics).  The
       losing duplicate typically aborts on the winner's already-applied
       state — and with a resume prefix its undo stack holds actions it
       never ran, so unwinding would corrupt the winner's committed
       effects.  [confirm_undo] re-reads the authoritative record; once
       the transaction is terminal the rollback is abandoned. *)
    if executed <> [] && not (confirm_undo ()) then
      Proto.Phy_aborted
        (reason ^ "; rollback skipped: transaction already terminal")
    else
    let t0 = Option.map Des.Sim.now sim in
    let opened =
      trace_span tracer ~cat:"undo" ~name:"undo"
        ~attrs:
          [ ("actions", string_of_int (List.length executed));
            ("cause", reason) ]
    in
    protect_span opened (fun () ->
        let result =
          undo_executed ~devices ~policy ?rng ?sim ?counters ?tracer
            ?on_progress executed
        in
        (match (t0, sim, counters) with
         | Some t0, Some sim, Some c ->
           c.undo_s <- c.undo_s +. (Des.Sim.now sim -. t0)
         | _ -> ());
        match result with
        | Ok () ->
          trace_end opened ~attrs:[ ("outcome", "ok") ];
          Proto.Phy_aborted reason
        | Error (index, undo_reason) ->
          trace_end opened
            ~attrs:
              [ ("outcome", "failed"); ("undo_index", string_of_int index);
                ("reason", undo_reason) ];
          Proto.Phy_failed
            (Printf.sprintf "%s; undo #%d failed: %s" reason index undo_reason))
  in
  (* A resumed replay treats the first [skip] records as already applied:
     they are not re-invoked, but they join the undo prefix so a later
     failure rolls the whole transaction back, not just the tail. *)
  let rec split n acc = function
    | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
    | rest -> (acc, rest)
  in
  let skipped, rest = split skip [] log in
  run skipped rest
