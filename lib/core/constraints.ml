type violation = {
  constraint_name : string;
  at : Data.Path.t;
  message : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "constraint %s violated at %a: %s" v.constraint_name
    Data.Path.pp v.at v.message

type t = {
  name : string;
  kind : string;
  check :
    Data.Tree.t -> Data.Path.t -> Data.Tree.node -> (unit, string) result;
}

type registry = { by_kind : (string, t list) Hashtbl.t }

let create () = { by_kind = Hashtbl.create 8 }

let register reg c =
  let existing = Option.value (Hashtbl.find_opt reg.by_kind c.kind) ~default:[] in
  Hashtbl.replace reg.by_kind c.kind (existing @ [ c ])

let all reg =
  Hashtbl.fold (fun _ cs acc -> cs @ acc) reg.by_kind []

let constrained_kind reg kind = Hashtbl.mem reg.by_kind kind

(* Ancestor-or-self paths, outermost (root) first. *)
let spine path = List.rev (Data.Path.ancestors path) @ [ path ]

let check_node reg tree node_path (node : Data.Tree.node) =
  match Hashtbl.find_opt reg.by_kind node.Data.Tree.kind with
  | None -> []
  | Some constraints ->
    List.filter_map
      (fun c ->
        match c.check tree node_path node with
        | Ok () -> None
        | Error message ->
          Some { constraint_name = c.name; at = node_path; message })
      constraints

let check_path reg tree path =
  (* Ancestors-or-self first (outermost in), then the touched subtree, so
     constraints on entities below the touched object are enforced too. *)
  let spine_violations =
    List.concat_map
      (fun node_path ->
        match Data.Tree.find tree node_path with
        | None -> []
        | Some node -> check_node reg tree node_path node)
      (spine path)
  in
  let subtree_violations =
    match Data.Tree.find tree path with
    | None -> []
    | Some root ->
      let rec walk node_path (node : Data.Tree.node) acc =
        let acc =
          if Data.Path.equal node_path path then acc (* already on the spine *)
          else acc @ check_node reg tree node_path node
        in
        Data.Tree.Smap.fold
          (fun name child acc ->
            walk (Data.Path.child node_path name) child acc)
          node.Data.Tree.children acc
      in
      walk path root []
  in
  spine_violations @ subtree_violations

let highest_constrained_ancestor reg tree path =
  List.find_opt
    (fun node_path ->
      match Data.Tree.find tree node_path with
      | None -> false
      | Some node -> constrained_kind reg node.Data.Tree.kind)
    (spine path)
