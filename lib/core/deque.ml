(* Classic two-list deque: [front] in order, [back] reversed. *)
type 'a t = { mutable front : 'a list; mutable back : 'a list }

let create () = { front = []; back = [] }
let length d = List.length d.front + List.length d.back
let is_empty d = d.front = [] && d.back = []
let push_front d x = d.front <- x :: d.front
let push_back d x = d.back <- x :: d.back

let pop_front d =
  match d.front with
  | x :: rest ->
    d.front <- rest;
    Some x
  | [] ->
    (match List.rev d.back with
     | [] -> None
     | x :: rest ->
       d.back <- [];
       d.front <- rest;
       Some x)

let to_list d = d.front @ List.rev d.back

let remove d keep_out =
  let before = length d in
  d.front <- List.filter (fun x -> not (keep_out x)) d.front;
  d.back <- List.filter (fun x -> not (keep_out x)) d.back;
  before - length d
