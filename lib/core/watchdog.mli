(** Leader-side stall watchdog.

    Paper §4 assumes an {e operator} notices a stalled transaction and
    issues TERM/KILL.  The watchdog automates the operator: every
    in-flight (Started) transaction gets a deadline derived from its
    execution log — [slack + latency_factor × Σ default action
    latencies] — and once the deadline passes the watchdog escalates:

    {v Armed --deadline--> Termed --term_grace--> Killed --kill_grace--> (re-KILL) v}

    TERM asks the worker for a graceful undo; if the transaction is still
    Started after [term_grace] (worker hung or dead), KILL makes the
    controller abandon the physical side: logical rollback, quarantine of
    the written subtrees, lock release.  A transaction that somehow stays
    Started after a KILL (e.g. the kill item died with a leader) is
    re-KILLed every [kill_grace].

    The timer table is soft state: {!scan} drops entries for finished
    transactions and arms unseen Started ones from the current time, so a
    recovering leader re-derives the whole table idempotently from its
    recovered transaction set. *)

type config = {
  enabled : bool;
  latency_factor : float;  (** deadline multiplier over nominal latency *)
  slack : float;           (** flat allowance for queueing/dispatch, seconds *)
  term_grace : float;      (** TERM → KILL escalation delay *)
  kill_grace : float;      (** re-KILL period while still Started *)
  poll_interval : float;   (** how often the controller scans *)
}

(** Enabled; factor 4, slack 5s, graces 10s, poll 2s. *)
val default_config : config

val disabled : config

type stage = Armed | Termed | Killed

val stage_to_string : stage -> string

type t

val create : config -> t

(** Deadline estimate (seconds) for one execution log. *)
val estimate : config -> Xlog.t -> float

(** One pass: reconcile the timer table against [started] (the in-flight
    transactions with their logs), then escalate every overdue entry via
    [signal].  No-op when the config is disabled. *)
val scan :
  t ->
  now:float ->
  started:(int * Xlog.t) list ->
  signal:(int -> Proto.signal -> unit) ->
  unit

(** Entries currently tracked (in-flight transactions seen by scan). *)
val tracked : t -> int

val stage_of : t -> int -> stage option
val terms_issued : t -> int
val kills_issued : t -> int
