(** Transaction records and their life cycle (paper Fig. 2).

    A record is persisted in the coordination service at every state
    transition that matters for recovery, so a newly elected controller can
    rebuild its in-memory state (todo queue, lock table, logical tree)
    without losing any transaction. *)

type state =
  | Initialized          (** created by the client, in inputQ *)
  | Accepted             (** dequeued by the controller, in todoQ *)
  | Deferred             (** hit a lock conflict; back at the head of todoQ *)
  | Started              (** simulated, locks held, handed to the physical layer *)
  | Committed
  | Aborted of string    (** rolled back cleanly; reason recorded *)
  | Failed of string     (** an undo failed: cross-layer inconsistency *)

val state_to_string : state -> string
val state_of_string : string -> (state, string) result
val pp_state : Format.formatter -> state -> unit

(** Terminal states are [Committed], [Aborted] and [Failed]. *)
val is_terminal : state -> bool

(** Canonical reason string for transactions shed by admission control
    (the fast overload abort — no locks taken, no hardware touched). *)
val overload_reason : string

(** True for [Aborted overload_reason]: an expected load-shedding
    outcome, not an orchestration failure. *)
val is_overload : state -> bool

(** Cached sexp renderings of the immutable-ish record parts (args, log,
    locks), so persisting every state transition doesn't re-serialize the
    whole execution log each time; invalidated by rebinding [log] or
    [locks] (identity-keyed).  Managed by {!to_sexp} — leave it [None]. *)
type ser_cache

type t = {
  id : int;
  proc : string;                     (** stored procedure name *)
  args : Data.Value.t list;
  mutable state : state;
  mutable log : Xlog.t;              (** filled by logical simulation *)
  mutable locks : (Data.Path.t * Mglock.mode) list;
  mutable start_seq : int option;
      (** order in which the controller started transactions; recovery
          replays Started/Committed logs in this order *)
  mutable submitted_at : float;
  mutable finished_at : float option;
  mutable ser_cache : ser_cache option;
}

val make : id:int -> proc:string -> args:Data.Value.t list -> submitted_at:float -> t
val pp : Format.formatter -> t -> unit

(** {1 Persistence} *)

val to_sexp : t -> Data.Sexp.t
val of_sexp : Data.Sexp.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

(** Key of this transaction's record in the coordination service,
    e.g. ["/tropic/txns/t0000000042"]. *)
val record_key : int -> string

(** Same, under a shard namespace (see {!Proto.ns_of_shard}). *)
val record_key_ns : string -> int -> string
