(** Physical-layer execution (paper §3.2): replay an execution log against
    the devices; on an action failure, execute the undo actions of the
    already-completed prefix in reverse chronological order.

    If an undo itself fails, undoing stops (undos may have temporal
    dependencies — paper footnote 2) and the transaction is failed,
    leaving a cross-layer inconsistency for reconciliation to repair. *)

(** Resolve the device owning a resource path (exact root or ancestor). *)
type device_lookup = Data.Path.t -> Devices.Device.t option

(** Consulted between actions; [`Term] stops with a graceful undo roll
    back, [`Kill] stops immediately leaving physical state as-is. *)
type signal_check = unit -> [ `Go | `Term | `Kill ]

val execute :
  devices:device_lookup ->
  ?check_signal:signal_check ->
  Xlog.t ->
  Proto.outcome

(** [lookup_of_list devices] builds a {!device_lookup} that matches a path
    to the device whose root is the path itself or its nearest ancestor. *)
val lookup_of_list : Devices.Device.t list -> device_lookup
