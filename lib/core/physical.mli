(** Physical-layer execution (paper §3.2): replay an execution log against
    the devices; on an action failure, execute the undo actions of the
    already-completed prefix in reverse chronological order.

    If an undo itself fails, undoing stops (undos may have temporal
    dependencies — paper footnote 2) and the transaction is failed,
    leaving a cross-layer inconsistency for reconciliation to repair.

    On top of the replay loop sits a per-action robustness policy:
    transient errors (offline devices, injected blips, deadline
    timeouts) are retried in place — bounded attempts, exponential
    backoff with deterministic jitter drawn from the sim rng — before
    the action is declared failed and rollback starts; and each
    invocation runs under a deadline so a hung device surfaces as a
    retryable timeout instead of blocking the worker forever. *)

(** Resolve the device owning a resource path (exact root or ancestor). *)
type device_lookup = Data.Path.t -> Devices.Device.t option

(** Consulted between actions (and between retry attempts); [`Term] stops
    with a graceful undo roll back, [`Kill] stops immediately leaving
    physical state as-is. *)
type signal_check = unit -> [ `Go | `Term | `Kill ]

(** Per-action robustness policy.  An action is attempted up to
    [max_attempts] times; attempt [n+1] happens after a backoff of
    [min backoff_cap (backoff_base * backoff_factor^(n-1))] scaled by a
    uniform jitter in [1 ± jitter].  Each attempt is bounded by
    [deadline] simulated seconds (requires executing inside a DES
    process with [~sim]); expiry kills the invocation and counts as a
    transient timeout. *)
type retry_policy = {
  max_attempts : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_cap : float;
  jitter : float;
  deadline : float option;
}

(** Single attempt, no deadline: the pre-robustness behaviour. *)
val no_retry : retry_policy

(** 4 attempts, 0.5s base doubling to an 8s cap, ±50% jitter, 30s
    per-action deadline. *)
val default_retry : retry_policy

(** Nominal (jitter-free) backoff before retry [n] (first retry is 1). *)
val backoff_nominal : retry_policy -> int -> float

(** Jittered backoff before retry [n]; deterministic given [rng]. *)
val backoff_delay : retry_policy -> ?rng:Random.State.t -> int -> float

(** Robustness counters, accumulated across one or more [execute] calls.
    [undo_s] accumulates sim seconds spent rolling back (0 without
    [~sim]). *)
type counters = {
  mutable retries : int;
  mutable transient_failures : int;
  mutable timeouts : int;
  mutable undo_s : float;
}

val fresh_counters : unit -> counters

(** [execute ~devices log] replays [log].  [policy] defaults to
    {!no_retry}; pass [~sim] (and normally [~rng] from the same sim) to
    enable deadlines and timed backoff — without it, retries are
    immediate and deadlines are ignored.  [counters], when given, is
    incremented in place.  [tracer], when given, records per-attempt
    action spans, backoff spans and undo chains under the given
    transaction id.

    [skip] (default 0) treats the first [skip] records as already
    executed by a previous incarnation of this replay: they are not
    re-invoked — their effects are on the devices — but they join the
    undo prefix, so a later failure still rolls them back.
    [on_progress] is called with each record's index once its action
    completes, and again as undos retire records (with the index {e
    below} the undone record — [0] for a fully undone prefix, indices
    being 1-based); persisting that cursor is what makes a crashed
    replay resumable.

    [confirm_undo] (default: always true) is consulted once before a
    rollback with a non-empty executed prefix.  Returning [false]
    abandons the rollback and reports the abort with the physical state
    left as-is: the hook lets a worker that lost a duplicate-replay race
    re-read the authoritative record and refuse to unwind effects the
    winning incarnation already committed. *)
val execute :
  devices:device_lookup ->
  ?check_signal:signal_check ->
  ?policy:retry_policy ->
  ?rng:Random.State.t ->
  ?sim:Des.Sim.t ->
  ?counters:counters ->
  ?tracer:Trace.t * int * int ->
  ?skip:int ->
  ?on_progress:(int -> unit) ->
  ?confirm_undo:(unit -> bool) ->
  Xlog.t ->
  Proto.outcome

(** [lookup_of_list devices] builds a {!device_lookup} that matches a path
    to the device whose root is the path itself or its nearest ancestor. *)
val lookup_of_list : Devices.Device.t list -> device_lookup
