type rule = {
  rule_kind : string;
  rule_attr : string;
  make_action :
    node_name:string ->
    target:Data.Value.t ->
    (string * Data.Value.t list) option;
}

type step = {
  at : Data.Path.t;
  action : string;
  args : Data.Value.t list;
}

let pp_step fmt s =
  Format.fprintf fmt "%a: %s(%s)" Data.Path.pp s.at s.action
    (String.concat ", " (List.map Data.Value.to_string s.args))

type plan = {
  steps : step list;
  unrepaired : Data.Diff.change list;
}

let find_rule rules ~kind ~attr =
  List.find_opt
    (fun rule ->
      String.equal rule.rule_kind kind && String.equal rule.rule_attr attr)
    rules

let plan_repair ~rules ~at ~logical ~physical =
  (* Diff physical (old) against logical (new): the changes are exactly what
     must be applied to the device. *)
  let changes =
    Data.Diff.diff ~old_tree:physical ~new_tree:logical
  in
  let steps, unrepaired =
    List.fold_left
      (fun (steps, unrepaired) change ->
        match change with
        | Data.Diff.Attr_set (rel_path, attr, _old, target) ->
          let full_path = Data.Path.append at rel_path in
          let kind =
            Option.map
              (fun (node : Data.Tree.node) -> node.Data.Tree.kind)
              (Data.Tree.find logical rel_path)
          in
          (match kind with
           | None -> (steps, change :: unrepaired)
           | Some kind ->
             (match find_rule rules ~kind ~attr with
              | None -> (steps, change :: unrepaired)
              | Some rule ->
                let node_name =
                  Option.value (Data.Path.basename full_path) ~default:""
                in
                (match rule.make_action ~node_name ~target with
                 | None -> (steps, change :: unrepaired)
                 | Some (action, args) ->
                   let parent =
                     Option.value (Data.Path.parent full_path) ~default:at
                   in
                   ({ at = parent; action; args } :: steps, unrepaired))))
        | Data.Diff.Added _ | Data.Diff.Removed _
        | Data.Diff.Kind_changed _ | Data.Diff.Attr_removed _ ->
          (steps, change :: unrepaired))
      ([], []) changes
  in
  { steps = List.rev steps; unrepaired = List.rev unrepaired }
