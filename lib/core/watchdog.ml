type config = {
  enabled : bool;
  latency_factor : float;
  slack : float;
  term_grace : float;
  kill_grace : float;
  poll_interval : float;
}

let default_config =
  {
    enabled = true;
    latency_factor = 4.;
    slack = 5.;
    term_grace = 10.;
    kill_grace = 10.;
    poll_interval = 2.;
  }

let disabled = { default_config with enabled = false }

type stage = Armed | Termed | Killed

let stage_to_string = function
  | Armed -> "armed"
  | Termed -> "termed"
  | Killed -> "killed"

type entry = { deadline : float; mutable stage : stage; mutable stage_at : float }

type t = {
  cfg : config;
  table : (int, entry) Hashtbl.t;
  mutable terms_issued : int;
  mutable kills_issued : int;
}

let create cfg =
  { cfg; table = Hashtbl.create 16; terms_issued = 0; kills_issued = 0 }

let tracked t = Hashtbl.length t.table
let terms_issued t = t.terms_issued
let kills_issued t = t.kills_issued

(* Expected wall-clock of a transaction's physical phase: the sum of its
   actions' nominal device latencies, scaled by [latency_factor] to absorb
   queueing, retries and backoff, plus a flat [slack] for dispatch. *)
let estimate cfg (log : Xlog.t) =
  let work =
    List.fold_left
      (fun acc (record : Xlog.record) ->
        acc +. Devices.Device.default_latency record.Xlog.action)
      0. log
  in
  cfg.slack +. (cfg.latency_factor *. work)

let stage_of t txn_id =
  Option.map (fun e -> e.stage) (Hashtbl.find_opt t.table txn_id)

(* One watchdog pass.  [started] is the authoritative list of in-flight
   transactions; table entries for anything else are dropped (the txn
   finished), and unseen Started txns are armed with a deadline measured
   from this pass — which is exactly what makes leader recovery idempotent:
   a fresh leader re-derives the whole table from its recovered Started
   set, granting survivors a fresh (conservative) deadline instead of
   inheriting absolute timestamps from a dead leader's clock history. *)
let scan t ~now ~started ~signal =
  if t.cfg.enabled then begin
    let live = Hashtbl.create (max 16 (List.length started)) in
    List.iter (fun (id, _) -> Hashtbl.replace live id ()) started;
    let stale =
      Hashtbl.fold
        (fun id _ acc -> if Hashtbl.mem live id then acc else id :: acc)
        t.table []
    in
    List.iter (Hashtbl.remove t.table) stale;
    List.iter
      (fun (id, log) ->
        match Hashtbl.find_opt t.table id with
        | None ->
          Hashtbl.replace t.table id
            {
              deadline = now +. estimate t.cfg log;
              stage = Armed;
              stage_at = now;
            }
        | Some entry ->
          (match entry.stage with
           | Armed ->
             if now >= entry.deadline then begin
               entry.stage <- Termed;
               entry.stage_at <- now;
               t.terms_issued <- t.terms_issued + 1;
               signal id Proto.Term
             end
           | Termed ->
             if now >= entry.stage_at +. t.cfg.term_grace then begin
               entry.stage <- Killed;
               entry.stage_at <- now;
               t.kills_issued <- t.kills_issued + 1;
               signal id Proto.Kill
             end
           | Killed ->
             (* Still Started after a KILL: the kill item may have been
                lost with a dead leader.  Re-issue — the handler is
                idempotent. *)
             if now >= entry.stage_at +. t.cfg.kill_grace then begin
               entry.stage_at <- now;
               t.kills_issued <- t.kills_issued + 1;
               signal id Proto.Kill
             end))
      started
  end
