(** The TROPIC controller (logical layer).

    Each instance joins the controller election; the winner serves
    transactions: it accepts requests from inputQ, schedules them (FIFO
    with defer-on-conflict, or the "aggressive" variant the paper leaves as
    future work), simulates them against the logical tree under constraint
    checks and multi-granularity locks, hands runnable transactions to the
    physical layer via phyQ, and finalizes them when results come back —
    rolling the logical layer back with undo actions on aborts.

    Every state transition that matters is persisted in the coordination
    service first, so when a controller dies, the next leader's {e
    idempotent recovery} — checkpoint + log replay, re-acquired locks,
    re-queued work — resumes every in-flight transaction without loss.

    The controller charges its logical work to a CPU {!Des.Station}
    (simulation is single-threaded, as in the paper's Python prototype);
    the station's busy time is what Figure 4 plots. *)

type config = {
  scheduling : [ `Fifo | `Aggressive ];
  cpu_per_txn : float;      (** base CPU seconds per simulated transaction *)
  cpu_per_action : float;   (** CPU seconds per simulated action *)
  checkpoint_every : int option;
      (** quiescent checkpoint period, in commits; [None] disables *)
  repair_rules : Recon.rule list;
  constraint_guard_locks : bool;
      (** the §3.1.3 R-lock-on-constrained-ancestor rule (ablation knob) *)
  repair_interval : float option;
      (** §4: how often the leader compares the two layers and repairs
          drift (also re-attempting quarantined subtrees); [None] leaves
          reconciliation to the operator *)
  watchdog : Watchdog.config;
      (** leader-side stall watchdog (TERM → KILL escalation on overdue
          in-flight transactions); {!Watchdog.disabled} by default *)
  health : Health.config;
      (** per-device EWMA health scoring and circuit breakers; tripped
          subtrees defer writers at admission, before lock acquisition.
          {!Health.disabled} by default *)
  admission : Health.admission;
      (** pending-queue watermarks: at [queue_high] new arrivals are shed
          with the fast [Txn.overload_reason] abort until the queue drains
          to [queue_low]; {!Health.no_admission} by default *)
  twopc_prepare_timeout : float;
      (** presumed-abort deadline: a coordinator stuck gathering votes (or
          a prepared participant stuck awaiting the decision) gives up
          after this many sim seconds *)
  twopc_decision_record : bool;
      (** ablation knob: when false, the durable 2PC decision record is
          never written or consulted — crashes mid-commit lose the
          decision and shards diverge *)
}

val default_config : config

(** Stored-procedure name of the shadow transactions a participant shard
    runs on behalf of a cross-shard coordinator. *)
val participant_proc : string

type stats = {
  mutable accepted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deferrals : int;       (** lock-conflict deferments *)
  mutable violations : int;      (** constraint-violation aborts *)
  mutable repairs : int;         (** repair steps executed *)
  mutable reloads : int;
  mutable wakeups : int;
      (** blocked txns re-readied because a released lock unparked them *)
  mutable spurious_wakeups : int;
      (** wakeups whose re-attempt conflicted again (re-parked) *)
  mutable retries_saved : int;
      (** blocked txns a per-completion rescan would have re-attempted but
          wake-on-release left sleeping *)
  mutable wake_passes : int;
      (** batched [Sched.wake] deliveries: one deduplicated pass per
          scheduler round, however many releases fed it *)
  mutable terms : int;     (** TERM signals handled (operator + watchdog) *)
  mutable kills : int;     (** KILL signals handled (operator + watchdog) *)
  mutable auto_terms : int;  (** TERMs issued by the watchdog *)
  mutable auto_kills : int;  (** KILLs issued by the watchdog *)
  mutable exec_retries : int;
      (** physical-layer retry attempts, summed over worker reports *)
  mutable transient_failures : int;
      (** transient device errors observed by workers *)
  mutable timeouts : int;  (** per-action deadline expiries *)
  mutable sheds : int;
      (** arrivals aborted by admission control ([Txn.overload_reason]) *)
  mutable breaker_deferrals : int;
      (** admission attempts parked because a written subtree's breaker
          was open *)
  mutable breaker_trips : int;    (** → Tripped transitions *)
  mutable breaker_probes : int;   (** canary transactions dispatched *)
  mutable breaker_closes : int;   (** canary successes re-closing a breaker *)
  mutable twopc_started : int;    (** cross-shard coordinations begun here *)
  mutable twopc_committed : int;  (** decision records created as Commit *)
  mutable twopc_aborted : int;    (** cross-shard coordinations aborted *)
  mutable twopc_prepares : int;   (** participant votes cast (ok = true) *)
  simulate_lat : Metrics.Cdf.t;
      (** per-attempt logical simulation + CPU-model time *)
  lock_wait_lat : Metrics.Cdf.t;
      (** park-to-reattempt time of lock-conflict deferments *)
  replay_lat : Metrics.Cdf.t;  (** worker-reported physical replay time *)
  undo_lat : Metrics.Cdf.t;
      (** worker-reported rollback time of aborted replays *)
}

(** One-line per-phase latency breakdown ("p50/p99" per phase, [n/a] for
    phases no transaction crossed), appended to experiment summaries. *)
val phase_summary : stats -> string

type t

(** [trace], when given, records a span tree per transaction (admission,
    scheduling, lock waits, simulation, watchdog/health escalations); pass
    the same recorder to the workers for replay/undo spans.

    [shard] scopes this controller to one shard of the resource tree
    (default {!Shard.singleton}: the whole tree, pre-sharding layout);
    [client] must then connect to that shard's coordination ensemble, and
    [gclient] to the global (shard 0) ensemble carrying the 2PC mailboxes
    and decision records (defaults to [client] — correct for shard 0 and
    for single-shard platforms).

    [persist_pool] is a set of extra coordination sessions the controller
    uses to overlap the txn-record writes of an input burst (they then
    coalesce into shared replica-side group-commit batches); empty
    (default) keeps every persist synchronous on [client]. *)
val create :
  ?trace:Trace.t ->
  ?shard:Shard.t ->
  ?gclient:Coord.Client.t ->
  ?persist_pool:Coord.Client.t list ->
  name:string ->
  client:Coord.Client.t ->
  env:Dsl.env ->
  config:config ->
  devices:Physical.device_lookup ->
  device_roots:Data.Path.t list ->
  sim:Des.Sim.t ->
  unit ->
  t

(** Spawn the controller process (election, recovery, main loop). *)
val start : t -> unit

(** Kill the controller process and close its coordination session — from
    the rest of the system's point of view, a crash. *)
val crash : t -> unit

val name : t -> string
val is_leader : t -> bool

(** The shard this controller serves, and its id. *)
val shard : t -> Shard.t

val shard_id : t -> int

(** Current logical tree (meaningful on the leader). *)
val tree : t -> Data.Tree.t

val stats : t -> stats

(** Zeroed counters with empty latency recorders — an accumulator for
    {!absorb_stats}. *)
val fresh_stats : unit -> stats

(** Snapshot of the integer counters that shares the latency recorders
    with [src]; safe to {!absorb_stats} into without touching the live
    record. *)
val copy_stats : stats -> stats

(** [absorb_stats ~into src] adds [src]'s integer counters into [into].
    Latency recorders are not merged (exact quantiles cannot be combined
    after the fact).  Lets transaction totals survive controller
    fail-overs: fold a retired instance's stats into an accumulator and
    add that to the current leader's. *)
val absorb_stats : into:stats -> stats -> unit

(** Scheduled-but-not-started transactions: ready + blocked (the
    refactored todoQ length). *)
val todo_length : t -> int

(** Transactions parked in the blocked table — 0 at quiescence. *)
val blocked_length : t -> int

val inflight : t -> int

(** Ids of the in-flight (Started) transactions, ascending. *)
val started_txns : t -> int list

(** Number of (path, txn) entries in the lock table — 0 at quiescence. *)
val lock_count : t -> int

(** Parked waiter registrations in the lock manager — tracks
    {!blocked_length}; 0 at quiescence. *)
val waiter_count : t -> int

(** Quarantined (inconsistent) subtree roots. *)
val quarantined : t -> Data.Path.t list

(** Cumulative CPU busy time (Fig. 4's y-axis numerator). *)
val cpu_busy_time : t -> float
