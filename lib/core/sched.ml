type policy = [ `Fifo | `Aggressive ]
type attempt = [ `Started | `Finished | `Conflict ]

type t = {
  policy : policy;
  ready : Txn.t Deque.t;
  blocked : (int, Txn.t) Hashtbl.t;
  just_woken : (int, unit) Hashtbl.t; (* woken but not yet re-attempted *)
}

let create policy =
  {
    policy;
    ready = Deque.create ();
    blocked = Hashtbl.create 16;
    just_woken = Hashtbl.create 8;
  }

let policy t = t.policy
let ready_length t = Deque.length t.ready
let blocked_length t = Hashtbl.length t.blocked
let length t = ready_length t + blocked_length t
let is_idle t = length t = 0

let blocked_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.blocked [] |> List.sort compare

let submit t txn =
  let was_idle = is_idle t in
  Deque.push_back t.ready txn;
  was_idle

let drain t ~attempt ~on_spurious =
  let run (txn : Txn.t) =
    let woken = Hashtbl.mem t.just_woken txn.Txn.id in
    Hashtbl.remove t.just_woken txn.Txn.id;
    match attempt txn with
    | (`Started | `Finished) as r -> r
    | `Conflict ->
      if woken then on_spurious txn;
      Hashtbl.replace t.blocked txn.Txn.id txn;
      `Conflict
  in
  match t.policy with
  | `Fifo ->
    (* Strict FIFO: while the head is parked on a conflict nothing behind
       it runs; the wake that re-readies the head restarts the drain. *)
    let rec loop () =
      if Hashtbl.length t.blocked = 0 then
        match Deque.pop_front t.ready with
        | None -> ()
        | Some txn -> (match run txn with `Conflict -> () | _ -> loop ())
    in
    loop ()
  | `Aggressive ->
    (* Every ready transaction gets one attempt; conflicting ones park
       individually and the rest keep flowing past them. *)
    let rec loop () =
      match Deque.pop_front t.ready with
      | None -> ()
      | Some txn ->
        ignore (run txn);
        loop ()
    in
    loop ()

let wake t ids =
  (* Woken transactions are older than anything still ready (they parked
     before it was submitted or drained), so they rejoin at the front, in
     ascending id = submission order for deterministic fairness. *)
  let woken =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.blocked id with
        | None -> None (* already removed (signal) or never parked *)
        | Some txn ->
          Hashtbl.remove t.blocked id;
          Hashtbl.replace t.just_woken id ();
          Some txn)
      (List.sort_uniq compare ids)
  in
  List.iter (Deque.push_front t.ready) (List.rev woken);
  List.length woken

let remove t id =
  match Hashtbl.find_opt t.blocked id with
  | Some _ ->
    Hashtbl.remove t.blocked id;
    Hashtbl.remove t.just_woken id;
    `Blocked
  | None ->
    Hashtbl.remove t.just_woken id;
    if Deque.remove t.ready (fun (q : Txn.t) -> q.Txn.id = id) > 0 then `Ready
    else `Absent

let to_list t =
  Deque.to_list t.ready
  @ (Hashtbl.fold (fun _ txn acc -> txn :: acc) t.blocked []
     |> List.sort (fun (a : Txn.t) b -> compare a.Txn.id b.Txn.id))
