(* Shared protocol types of the coordination service.

   The service exposes a ZooKeeper-flavoured API (versioned keys, ephemeral
   and sequential nodes, one-shot watches, sessions) replicated across an
   ensemble with a Raft-style protocol.  This module is pure data; replica
   and client logic live in {!Replica} and {!Client}. *)

(* ------------------------------------------------------------------ *)
(* Replicated commands and their results *)

(* Every client-originated command carries its session id and a per-session
   request sequence number: the state machine deduplicates retries so a
   command is applied exactly once even if the client re-sends it across a
   leader change. *)
type cmd =
  | Create of {
      session : int;
      req : int;
      key : string;
      value : string;
      ephemeral : bool;  (* deleted automatically when the session expires *)
      sequential : bool; (* a monotone suffix is appended to [key] *)
    }
  | Write of {
      session : int;
      req : int;
      key : string;
      value : string;
      expect_version : int option; (* CAS when [Some v]; upsert when [None] *)
    }
  | Delete of { session : int; req : int; key : string; expect_version : int option }
  | Expire_session of int (* proposed by the leader; system command *)
  | Noop (* appended by a fresh leader to commit its term *)

type op_error = Key_missing | Key_exists | Bad_version

type op_result =
  | Created of string (* the final key, with sequence suffix if requested *)
  | Written of int    (* new version *)
  | Deleted_ok
  | Expired_ok
  | Noop_ok
  | Op_failed of op_error

(* ------------------------------------------------------------------ *)
(* Client-visible queries (served at the leader, not replicated) *)

type query =
  | Get of string
  | Children of string            (* direct children of a key prefix *)
  | First_child of string         (* smallest direct child, if any *)
  | First_child_value of string   (* smallest child and its value *)
  | Count_children of string
  | Watch_key of string           (* one-shot watch *)
  | Watch_children of string

type watch_kind = Key_watch | Child_watch

type watch_event = { watched : string; kind : watch_kind }

type query_result =
  | Got of (string * int) option  (* value, version *)
  | Children_are of string list
  | First_child_is of string option
  | First_child_value_is of (string * string) option
  | Child_count of int
  | Watch_set

(* ------------------------------------------------------------------ *)
(* Wire messages *)

type log_entry = { term : int; cmd : cmd }

type peer_msg =
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote_reply of { term : int; granted : bool }
  | Append_entries of {
      term : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : log_entry list;
      leader_commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }
  | Install_snapshot of {
      term : int;
      last_included_index : int;
      last_included_term : int;
      data : string; (* serialized Store at last_included_index *)
    }

type request =
  | Ping
  | Goodbye (* graceful close: expire this session's ephemerals now *)
  | Submit of cmd
  | Query of query

type response =
  | Pong
  | Result of op_result
  | Query_result of query_result
  | Not_leader of int option (* best-known leader id *)

type msg =
  | Peer of peer_msg
  | Client_req of {
      req_id : int;
      session_timeout : float;
          (* piggybacked on every request so whichever replica currently
             leads learns the session's failure-detection timeout *)
      request : request;
    }
  | Client_resp of { req_id : int; response : response }
  | Watch_fired of watch_event

(* ------------------------------------------------------------------ *)
(* Ensemble configuration *)

type config = {
  heartbeat_interval : float;
  election_timeout : float; (* base; each election waits 1–2 × this *)
  tick : float;             (* replica loop granularity *)
  op_service_time : float;  (* leader service time per replicated op *)
  session_check_interval : float;
  default_session_timeout : float; (* for sessions learned implicitly *)
  request_timeout : float;  (* client retry timeout *)
  batch_limit : int;        (* max log entries per Append_entries *)
  snapshot_threshold : int; (* applied entries kept in the log before
                               compacting into a snapshot; 0 disables *)
}

let default_config =
  {
    heartbeat_interval = 0.05;
    election_timeout = 0.4;
    tick = 0.02;
    op_service_time = 0.0008;
    session_check_interval = 1.0;
    default_session_timeout = 10.0;
    request_timeout = 1.0;
    batch_limit = 64;
    snapshot_threshold = 50_000;
  }

let pp_op_error fmt e =
  Format.pp_print_string fmt
    (match e with
     | Key_missing -> "key missing"
     | Key_exists -> "key exists"
     | Bad_version -> "bad version")

let pp_op_result fmt = function
  | Created k -> Format.fprintf fmt "created %s" k
  | Written v -> Format.fprintf fmt "written v%d" v
  | Deleted_ok -> Format.pp_print_string fmt "deleted"
  | Expired_ok -> Format.pp_print_string fmt "session expired"
  | Noop_ok -> Format.pp_print_string fmt "noop"
  | Op_failed e -> Format.fprintf fmt "failed: %a" pp_op_error e
