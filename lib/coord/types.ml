(* Shared protocol types of the coordination service.

   The service exposes a ZooKeeper-flavoured API (versioned keys, ephemeral
   and sequential nodes, one-shot watches, sessions) replicated across an
   ensemble with a Raft-style protocol.  This module is pure data; replica
   and client logic live in {!Replica} and {!Client}. *)

(* ------------------------------------------------------------------ *)
(* Replicated commands and their results *)

(* Every client-originated command carries its session id and a per-session
   request sequence number: the state machine deduplicates retries so a
   command is applied exactly once even if the client re-sends it across a
   leader change. *)
type cmd =
  | Create of {
      session : int;
      req : int;
      key : string;
      value : string;
      ephemeral : bool;  (* deleted automatically when the session expires *)
      sequential : bool; (* a monotone suffix is appended to [key] *)
    }
  | Write of {
      session : int;
      req : int;
      key : string;
      value : string;
      expect_version : int option; (* CAS when [Some v]; upsert when [None] *)
    }
  | Delete of { session : int; req : int; key : string; expect_version : int option }
  | Expire_session of int (* proposed by the leader; system command *)
  | Noop (* appended by a fresh leader to commit its term *)
  (* Single-server membership changes (Raft §4), replicated through the
     same log as data commands.  They take effect on *append*, not on
     commit: a replica uses the latest configuration entry in its log to
     compute quorum and voting membership. *)
  | Add_replica of { session : int; req : int; id : int }
  | Remove_replica of { session : int; req : int; id : int }

type op_error =
  | Key_missing
  | Key_exists
  | Bad_version
  | Config_pending (* another membership change is still in flight *)
  | Config_invalid (* e.g. removing the leader or the last member *)

type op_result =
  | Created of string (* the final key, with sequence suffix if requested *)
  | Written of int    (* new version *)
  | Deleted_ok
  | Expired_ok
  | Noop_ok
  | Config_ok
  | Op_failed of op_error

(* ------------------------------------------------------------------ *)
(* Client-visible queries (served at the leader, not replicated) *)

type query =
  | Get of string
  | Children of string            (* direct children of a key prefix *)
  | First_child of string         (* smallest direct child, if any *)
  | First_child_value of string   (* smallest child and its value *)
  | Count_children of string
  | Watch_key of string           (* one-shot watch *)
  | Watch_children of string

type watch_kind = Key_watch | Child_watch

type watch_event = { watched : string; kind : watch_kind }

type query_result =
  | Got of (string * int) option  (* value, version *)
  | Children_are of string list
  | First_child_is of string option
  | First_child_value_is of (string * string) option
  | Child_count of int
  | Watch_set

(* ------------------------------------------------------------------ *)
(* Wire messages *)

type log_entry = { term : int; cmd : cmd }

(* Identity of one leader's replication stream towards its peers: the
   leader's vote (term × id) crossed with the log index of the latest
   membership-configuration entry.  Carried on every append/snapshot and
   echoed verbatim in the response, so the leader can tell a response that
   belongs to the *current* progress-tracking session from one left over
   from before a membership change — the openraft ReplicationSessionId
   trap: remove a node and re-add it within one term, and a delayed
   response from the old incarnation would otherwise corrupt the
   fresh progress entry. *)
type session_id = { s_term : int; s_leader : int; s_mlog : int }

type peer_msg =
  | Request_vote of { term : int; last_log_index : int; last_log_term : int }
  | Vote_reply of { term : int; granted : bool }
  | Append_entries of {
      session : session_id;
      term : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : log_entry list;
      leader_commit : int;
    }
  | Append_reply of {
      session : session_id; (* echoed from the request *)
      term : int;
      success : bool;
      match_index : int;
    }
  | Install_snapshot of {
      session : session_id;
      term : int;
      last_included_index : int;
      last_included_term : int;
      data : string; (* serialized Store at last_included_index *)
    }

type request =
  | Ping
  | Goodbye (* graceful close: expire this session's ephemerals now *)
  | Submit of cmd
  | Query of query

type response =
  | Pong
  | Result of op_result
  | Query_result of query_result
  | Not_leader of { hint : int option; members : int list }
      (* best-known leader id plus the responder's view of the effective
         membership, so clients connected before a config change stop
         cycling departed boot-time node ids *)

type msg =
  | Peer of peer_msg
  | Client_req of {
      req_id : int;
      session_timeout : float;
          (* piggybacked on every request so whichever replica currently
             leads learns the session's failure-detection timeout *)
      request : request;
    }
  | Client_resp of { req_id : int; response : response }
  | Watch_fired of watch_event

(* ------------------------------------------------------------------ *)
(* Ensemble configuration *)

type config = {
  heartbeat_interval : float;
  election_timeout : float; (* base; each election waits 1–2 × this *)
  tick : float;             (* replica loop granularity *)
  op_service_time : float;  (* leader service time per replicated op *)
  session_check_interval : float;
  default_session_timeout : float; (* for sessions learned implicitly *)
  request_timeout : float;  (* client retry timeout *)
  batch_limit : int;        (* max log entries per Append_entries *)
  snapshot_threshold : int; (* applied entries kept in the log before
                               compacting into a snapshot; 0 disables *)
  session_ids : bool;       (* reject append replies from a stale
                               replication session; ablation hook *)
  group_commit : bool;      (* batch client Submits into one append/fsync
                               round instead of charging each op alone;
                               ablation hook for the throughput baseline *)
  group_size : int;         (* flush the batch once it holds this many *)
  group_timeout : float;    (* ... or this long after its first command;
                               must stay well below [request_timeout] *)
  unsafe_ack : bool;        (* DURABILITY ABLATION: ack a Submit on
                               enqueue, before the batch reaches quorum *)
}

let default_config =
  {
    heartbeat_interval = 0.05;
    election_timeout = 0.4;
    tick = 0.02;
    op_service_time = 0.0008;
    session_check_interval = 1.0;
    default_session_timeout = 10.0;
    request_timeout = 1.0;
    batch_limit = 64;
    snapshot_threshold = 50_000;
    session_ids = true;
    group_commit = true;
    group_size = 16;
    group_timeout = 0.002;
    unsafe_ack = false;
  }

(* ------------------------------------------------------------------ *)
(* Membership helpers (pure; shared by replicas, tests and harnesses) *)

let member members id = List.mem id members

let add_member members id =
  if List.mem id members then members else List.sort compare (id :: members)

let remove_member members id = List.filter (fun m -> m <> id) members

(* Majority of the *effective* configuration. *)
let quorum_of members = (List.length members / 2) + 1

(* Votes (or acks) that actually count: one per distinct member.  A vote
   from a node outside [members] — a removed server still campaigning, a
   learner not yet promoted — never counts. *)
let count_votes ~members votes =
  List.length
    (List.sort_uniq compare (List.filter (fun v -> List.mem v members) votes))

(* ------------------------------------------------------------------ *)
(* Membership counters, shared by every replica instance an ensemble
   creates (instances come and go across add/remove; the counters must
   survive them). *)

type membership_stats = {
  mutable joins : int;   (* Add_replica entries appended by a leader *)
  mutable leaves : int;  (* Remove_replica entries appended by a leader *)
  mutable catchups : int;
      (* learners that reached their catch-up target and were promoted *)
  mutable stale_sessions_rejected : int;
      (* append replies dropped because their session id was stale *)
}

let fresh_membership_stats () =
  { joins = 0; leaves = 0; catchups = 0; stale_sessions_rejected = 0 }

(* ------------------------------------------------------------------ *)
(* Group-commit counters, shared by every replica instance of an ensemble
   for the same reason as [membership_stats]: leaders come and go, the
   batching telemetry must accumulate across them. *)

type group_stats = {
  mutable flushes : int;          (* batches appended *)
  mutable flush_full : int;       (* ... because the batch hit group_size *)
  mutable flush_timeout : int;    (* ... because group_timeout elapsed *)
  mutable batched_cmds : int;     (* client commands that rode a batch *)
  mutable acks_deferred : int;    (* commands enqueued without an
                                     immediate ack (released at quorum) *)
  mutable unsafe_acks : int;      (* commands acked at enqueue (ablation) *)
  mutable max_batch : int;        (* largest batch flushed so far *)
  batch_hist : int array;
      (* batch-size histogram: bucket i counts flushes of size in
         [2^i, 2^(i+1)); sizes past the last bucket land in it *)
}

let group_hist_buckets = 8 (* 1, 2-3, 4-7, ..., 128+ *)

let fresh_group_stats () =
  {
    flushes = 0;
    flush_full = 0;
    flush_timeout = 0;
    batched_cmds = 0;
    acks_deferred = 0;
    unsafe_acks = 0;
    max_batch = 0;
    batch_hist = Array.make group_hist_buckets 0;
  }

let group_hist_bucket size =
  let rec go i n = if n <= 1 || i >= group_hist_buckets - 1 then i else go (i + 1) (n / 2) in
  go 0 (max 1 size)

let note_batch gs size =
  gs.flushes <- gs.flushes + 1;
  gs.batched_cmds <- gs.batched_cmds + size;
  if size > gs.max_batch then gs.max_batch <- size;
  let b = group_hist_bucket size in
  gs.batch_hist.(b) <- gs.batch_hist.(b) + 1

let pp_op_error fmt e =
  Format.pp_print_string fmt
    (match e with
     | Key_missing -> "key missing"
     | Key_exists -> "key exists"
     | Bad_version -> "bad version"
     | Config_pending -> "config change pending"
     | Config_invalid -> "config change invalid")

let pp_op_result fmt = function
  | Created k -> Format.fprintf fmt "created %s" k
  | Written v -> Format.fprintf fmt "written v%d" v
  | Deleted_ok -> Format.pp_print_string fmt "deleted"
  | Expired_ok -> Format.pp_print_string fmt "session expired"
  | Noop_ok -> Format.pp_print_string fmt "noop"
  | Config_ok -> Format.pp_print_string fmt "config ok"
  | Op_failed e -> Format.fprintf fmt "failed: %a" pp_op_error e
