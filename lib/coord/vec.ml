type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size

let check v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i v.size)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let push v x =
  if v.size = Array.length v.data then begin
    let capacity = max 16 (2 * Array.length v.data) in
    let data = Array.make capacity x in
    Array.blit v.data 0 data 0 v.size;
    v.data <- data
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let truncate v n =
  if n < 0 || n > v.size then invalid_arg "Vec.truncate";
  v.size <- n

let to_list v = Array.to_list (Array.sub v.data 0 v.size)

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v
