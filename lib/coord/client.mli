(** Client session of the coordination service.

    A client owns a network node id (its session id), finds the current
    leader (following [Not_leader] hints and rotating on timeouts), keeps
    its session alive with pings, and retries commands across leader
    changes — retries are safe because the state machine deduplicates on
    [(session, req)].

    Watch events arrive asynchronously; they are surfaced both on
    {!events} and through {!await_change}, which recipes use as a wake-up
    hint before re-checking state (one-shot watches may be lost on a
    leader change, so all waiting is timeout-based). *)

type t

(** [members] seeds the leader search; the client refreshes its view from
    [Not_leader] replies as the ensemble configuration changes. *)
val connect :
  net:Types.msg Des.Net.t ->
  id:int ->
  members:int list ->
  config:Types.config ->
  ?session_timeout:float ->
  name:string ->
  unit ->
  t

val session_id : t -> int
val name : t -> string

(** {1 Replicated updates} — block the calling process until the command
    commits; retried transparently across failures. *)

val create :
  t ->
  ?ephemeral:bool ->
  ?sequential:bool ->
  key:string ->
  value:string ->
  unit ->
  (string, Types.op_error) result

val write :
  t -> ?expect_version:int -> key:string -> value:string -> unit ->
  (int, Types.op_error) result

val delete :
  t -> ?expect_version:int -> key:string -> unit -> (unit, Types.op_error) result

(** {1 Membership changes} — replicated like any command.  [Error
    Config_pending] means another change is in flight; retry. *)

val add_replica : t -> id:int -> (unit, Types.op_error) result
val remove_replica : t -> id:int -> (unit, Types.op_error) result

(** {1 Queries} — served by the leader from applied state. *)

val get : t -> string -> (string * int) option
val get_children : t -> string -> string list

(** Smallest direct child, without transferring the whole listing. *)
val first_child : t -> string -> string option

(** Smallest direct child together with its value, in one round trip. *)
val first_child_value : t -> string -> (string * string) option

val count_children : t -> string -> int

(** Arm a one-shot watch. *)
val watch_key : t -> string -> unit

val watch_children : t -> string -> unit

(** {1 Events} *)

val events : t -> Types.watch_event Des.Channel.t

(** Wait until any watch fires or [timeout] elapses; [true] iff an event
    arrived.  Callers must re-check the condition they care about. *)
val await_change : t -> timeout:float -> bool

(** {1 Lifecycle} *)

(** Stop all client activity without telling anyone.  The session stops
    pinging, so its ephemerals expire only after the session timeout —
    exactly what a crashed controller looks like. *)
val close : t -> unit

(** Graceful shutdown: announce the departure so the leader expires the
    session's ephemerals immediately, then {!close}. *)
val disconnect : t -> unit

val closed : t -> bool
