(** One replica of the coordination service.

    Replicas elect a leader and replicate a command log with a Raft-style
    protocol (randomized election timeouts, term-checked append entries,
    quorum commit, new-leader no-op).  The leader additionally owns the
    client-facing duties: serving queries, tracking sessions and expiring
    their ephemerals, firing watches, and charging replicated commands to
    a FIFO service station — the modeled ZooKeeper I/O cost that bounds
    transaction throughput in the paper's evaluation.  With
    [config.group_commit] on (the default), client commands coalesce into
    a batch that pays one amortized station round per flush (size- or
    timeout-triggered) and rides one replication round; acks are released
    only when the batch reaches quorum, unless the [unsafe_ack] durability
    ablation answers at enqueue.

    Membership is dynamic: [Add_replica]/[Remove_replica] commands flow
    through the same log as data commands and take effect on {e append}
    (single-server changes, Raft §4).  Quorum and vote counting always use
    the effective configuration; replication progress is tracked per node
    id, not per slot.  Every append/snapshot carries a replication session
    id (leader vote × membership log id); replies echoing a stale session
    are dropped, so a node removed and re-added within one term cannot
    corrupt the fresh incarnation's progress tracking.

    Lifecycle is driven by {!Ensemble}: [create] then [start]; a crash is
    [stop] (plus {!Des.Net.crash}); a restart is [reset_volatile] then
    [start] again — term, vote and log survive, mimicking stable storage. *)

type t

(** [create ~net ~id ~members ~config ()] — [members] is the canonical
    boot configuration (every instance of the ensemble must pass the same
    list; see {!Store.create}).  [~learner:true] creates a non-voting
    instance that will not campaign until it has seen evidence of its own
    membership — an [Add_replica] entry for itself, or a snapshot whose
    configuration lists it.  [?stats] shares membership counters across
    the instances an ensemble creates over its lifetime; [?gstats] does
    the same for the group-commit counters. *)
val create :
  ?learner:bool ->
  ?stats:Types.membership_stats ->
  ?gstats:Types.group_stats ->
  net:Types.msg Des.Net.t ->
  id:int ->
  members:int list ->
  config:Types.config ->
  unit ->
  t

(** Spawn the replica's processes (main loop; leaders add a replication
    pump and a session checker). *)
val start : t -> unit

(** Kill all processes; state is left in place (simulates stable storage). *)
val stop : t -> unit

(** Drop volatile state (role, commit index, applied store, sessions,
    watches); keep term, vote and log. Call between [stop] and [start]. *)
val reset_volatile : t -> unit

(** {1 Introspection (tests and harnesses)} *)

val id : t -> int
val is_leader : t -> bool
val term : t -> int
val commit_index : t -> int

(** Effective membership: boot/snapshot base plus every configuration
    entry in the log, committed or not. *)
val members : t -> int list

(** Whether this replica is in its own effective configuration. *)
val is_member : t -> bool

(** Absolute index of the last log entry. *)
val last_log_index : t -> int

(** Leader-side replication progress as [(peer, match_index)] pairs,
    sorted by peer id; empty on non-leaders.  Used by the chaos
    progress-integrity invariant: a leader must never believe a peer has
    replicated further than that peer's actual log. *)
val progress_snapshot : t -> (int * int) list

(** Retained (post-compaction) log entries. *)
val log_length : t -> int

(** Absolute index the retained log starts after (0 = never compacted). *)
val log_base : t -> int

val has_snapshot : t -> bool

(** The replica's applied state machine — read-only use only. *)
val store : t -> Store.t

(** Cumulative busy time of the leader-side op service station. *)
val station_busy_time : t -> float

(** Jobs queued at the op service station right now. *)
val station_queue_length : t -> int

(** Group-commit counters (shared across this ensemble's instances). *)
val group_stats : t -> Types.group_stats

(** Client commands parked in the open batch right now. *)
val batch_length : t -> int
