(** One replica of the coordination service.

    Replicas elect a leader and replicate a command log with a Raft-style
    protocol (randomized election timeouts, term-checked append entries,
    quorum commit, new-leader no-op).  The leader additionally owns the
    client-facing duties: serving queries, tracking sessions and expiring
    their ephemerals, firing watches, and charging each replicated command
    to a FIFO service station — the modeled ZooKeeper I/O cost that bounds
    transaction throughput in the paper's evaluation.

    Lifecycle is driven by {!Ensemble}: [create] then [start]; a crash is
    [stop] (plus {!Des.Net.crash}); a restart is [reset_volatile] then
    [start] again — term, vote and log survive, mimicking stable storage. *)

type t

val create :
  net:Types.msg Des.Net.t ->
  id:int ->
  replicas:int ->
  config:Types.config ->
  t

(** Spawn the replica's processes (main loop; leaders add a replication
    pump and a session checker). *)
val start : t -> unit

(** Kill all processes; state is left in place (simulates stable storage). *)
val stop : t -> unit

(** Drop volatile state (role, commit index, applied store, sessions,
    watches); keep term, vote and log. Call between [stop] and [start]. *)
val reset_volatile : t -> unit

(** {1 Introspection (tests and harnesses)} *)

val id : t -> int
val is_leader : t -> bool
val term : t -> int
val commit_index : t -> int

(** Retained (post-compaction) log entries. *)
val log_length : t -> int

(** Absolute index the retained log starts after (0 = never compacted). *)
val log_base : t -> int

val has_snapshot : t -> bool

(** The replica's applied state machine — read-only use only. *)
val store : t -> Store.t

(** Cumulative busy time of the leader-side op service station. *)
val station_busy_time : t -> float

(** Jobs queued at the op service station right now. *)
val station_queue_length : t -> int
