(** Assembles a coordination-service ensemble on a simulated network and
    hands out client sessions.

    Network node ids [0 .. replicas-1] are replicas; client sessions take
    ids from [replicas] upward. *)

type t

(** [create ?replicas ?clients ?config sim] — [replicas] defaults to 3,
    [clients] (client id slots) to 64. *)
val create :
  ?replicas:int -> ?clients:int -> ?config:Types.config -> Des.Sim.t -> t

val sim : t -> Des.Sim.t
val net : t -> Types.msg Des.Net.t
val config : t -> Types.config
val replica_count : t -> int
val replica : t -> int -> Replica.t

(** Open a client session. *)
val connect : t -> ?session_timeout:float -> name:string -> unit -> Client.t

(** Crash a replica: its processes die and its network port goes down.
    Stable state (term, vote, log) survives for {!restart_replica}. *)
val crash_replica : t -> int -> unit

val restart_replica : t -> int -> unit
val replica_up : t -> int -> bool

(** The current leader among live replicas (highest term wins if the view
    is transiently split); [None] during elections. *)
val leader_id : t -> int option

(** Block the calling process until a leader exists; returns its id. *)
val await_leader : t -> int

(** The leader's applied store, for tests. @raise Failure if no leader. *)
val leader_store : t -> Store.t
