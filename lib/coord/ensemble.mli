(** Assembles a coordination-service ensemble on a simulated network and
    hands out client sessions.

    Network node ids [0 .. replicas-1] are the boot replicas; client
    sessions take ids from [replicas] up to [replicas + clients - 1];
    [spares] node ids above the client range are reserved for replicas
    added at runtime ({!add_replica}).  Membership is dynamic: the live
    set of replica node ids is {!replica_ids}, not a contiguous range. *)

type t

(** Membership lifecycle notification (joins, leaves, catch-ups); consumed
    by the platform layer to emit trace events without a dependency from
    here to the tracer. *)
type event = { ev_name : string; ev_attrs : (string * string) list }

(** [create ?replicas ?clients ?spares ?config ?on_event sim] — [replicas]
    defaults to 3, [clients] (client id slots) to 64, [spares] (node ids
    for runtime-added replicas) to 4. *)
val create :
  ?replicas:int ->
  ?clients:int ->
  ?spares:int ->
  ?config:Types.config ->
  ?on_event:(event -> unit) ->
  Des.Sim.t ->
  t

val sim : t -> Des.Sim.t
val net : t -> Types.msg Des.Net.t
val config : t -> Types.config

(** Counters shared by every replica instance this ensemble ever created
    (instances come and go across {!add_replica}/{!remove_replica}). *)
val membership_stats : t -> Types.membership_stats

(** Group-commit counters, shared across instances the same way. *)
val group_stats : t -> Types.group_stats

(** Number of replica instances currently hosted (including removed-but-
    still-running ones awaiting teardown or re-add). *)
val replica_count : t -> int

(** Node ids currently hosting a replica instance, sorted. *)
val replica_ids : t -> int list

(** The instance at node [i]. @raise Failure if no replica lives there. *)
val replica : t -> int -> Replica.t

(** Open a client session. *)
val connect : t -> ?session_timeout:float -> name:string -> unit -> Client.t

(** Crash a replica: its processes die and its network port goes down.
    Stable state (term, vote, log) survives for {!restart_replica}. *)
val crash_replica : t -> int -> unit

val restart_replica : t -> int -> unit
val replica_up : t -> int -> bool

(** The current leader among live member replicas (highest term wins if
    the view is transiently split); [None] during elections. *)
val leader_id : t -> int option

(** Block the calling process until a leader exists; returns its id. *)
val await_leader : t -> int

(** The leader's applied store, for tests. @raise Failure if no leader. *)
val leader_store : t -> Store.t

(** The leader's effective membership; falls back to {!replica_ids} while
    no leader is known. *)
val members : t -> int list

(** {1 Dynamic membership}

    Both calls block the calling (simulated) process until the change
    commits, retrying through [Config_pending] windows. *)

(** [add_replica e ?id ()] boots a fresh learner instance at [id] (default:
    a free spare slot) and asks the leader to add it; the leader catches
    the learner up via log replay or snapshot before the configuration
    changes.  If [id] hosted a replica before, that old instance is killed
    and replaced — the re-add case.  Returns the node id. *)
val add_replica : t -> ?id:int -> unit -> int

(** [remove_replica e id] removes [id] from the replicated configuration.
    The removed instance is deliberately left running (a decommissioned
    server does not learn of its removal synchronously); crash it
    afterwards with {!crash_replica} if silence is wanted. *)
val remove_replica : t -> int -> unit
