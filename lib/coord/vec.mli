(** Growable array, used for replica logs (OCaml 5.1 has no Dynarray). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

(** @raise Invalid_argument when out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** [truncate v n] keeps the first [n] elements.
    @raise Invalid_argument if [n] exceeds the length. *)
val truncate : 'a t -> int -> unit

val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
