let log_src = Logs.Src.create "coord.replica" ~doc:"coordination replica"

module Log = (val Logs.src_log log_src : Logs.LOG)

type role = Follower | Candidate | Leader

type session_info = { mutable last_seen : float; mutable timeout : float }

(* A learner being caught up before it may count toward quorum: the leader
   replicates to it like any peer, and once its match index reaches
   [target] (the leader's last index when the join was requested) the
   deferred [Add_replica] entry is appended and the configuration actually
   changes — Raft §4.2.1's non-voting catch-up phase. *)
type join = {
  target : int;
  add_cmd : Types.cmd;
  reply_to : int * int; (* client node, req_id *)
}

(* Leader-side replication progress, one entry per target node id —
   voting peers of the effective configuration plus any learners.  The
   table replaces the old fixed [next_index]/[match_index] arrays, so
   membership can grow and shrink at runtime. *)
type progress = {
  mutable next : int;
  mutable match_ : int;
  mutable pending_join : join option;
}

(* One client command parked in the group-commit batch.  [b_acked] marks
   commands already answered at enqueue (the unsafe-ack ablation): they
   must not be answered again when the batch bounces or commits. *)
type batch_item = {
  b_client : int;
  b_req : int;
  b_cmd : Types.cmd;
  b_acked : bool;
}

type t = {
  rid : int;
  net : Types.msg Des.Net.t;
  base_members : int list; (* canonical boot configuration *)
  boot_voting : bool;      (* false iff created as a learner *)
  stats : Types.membership_stats;
  gstats : Types.group_stats;
  config : Types.config;
  (* State that survives a crash (stable storage). *)
  mutable term : int;
  mutable voted_for : int option;
  mutable log : Types.log_entry Vec.t;
      (* element 0 is a sentinel standing for absolute index [log_base];
         absolute index i lives at [i - log_base] *)
  mutable log_base : int;
  mutable snapshot : (int * int * string) option;
      (* (last_included_index, last_included_term, serialized store);
         stable storage, like term/vote/log *)
  (* Effective membership: the latest configuration entry present in the
     log (committed or not — effective on append, Raft §4), on top of the
     configuration the snapshot/boot base carries. *)
  mutable members : int list;
  mutable config_index : int;
      (* log index the effective configuration took effect at; part of
         the replication session id *)
  mutable snapshot_members : int list; (* configuration as of [log_base] *)
  mutable config_base : int;           (* identifier for that base config *)
  mutable voting : bool;
      (* a learner may not campaign until it has seen evidence of its own
         membership (its Add entry, or a snapshot listing it) — otherwise
         a freshly re-added empty node would disrupt elections *)
  (* Volatile state. *)
  mutable role : role;
  mutable leader_hint : int option;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable machine : Store.t;
  progress : (int, progress) Hashtbl.t;
  mutable votes : int list;
  mutable election_deadline : float;
  pending : (int, int * int) Hashtbl.t; (* log index -> client node, req_id *)
  sessions : (int, session_info) Hashtbl.t;
  key_watches : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  child_watches : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable station : Des.Station.t;
  (* Group-commit batcher (leader-only).  Commands are consed on in arrival
     order and reversed at flush, so log order preserves submit order. *)
  mutable batch : batch_item list;
  mutable batch_len : int;
  mutable batch_deadline : float;
  mutable batch_signal : unit Des.Channel.t;
      (* one token per empty->nonempty transition; wakes the timeout
         flusher *)
  mutable stop_requested : bool;
  mutable procs : Des.Proc.t list;
}

let sim r = Des.Net.sim r.net
let now r = Des.Sim.now (sim r)
let id r = r.rid
let is_leader r = r.role = Leader
let term r = r.term
let commit_index r = r.commit_index
let log_length r = Vec.length r.log - 1
let log_base r = r.log_base
let has_snapshot r = Option.is_some r.snapshot
let store r = r.machine
let station_busy_time r = Des.Station.busy_time r.station
let station_queue_length r = Des.Station.queue_length r.station
let group_stats r = r.gstats
let batch_length r = r.batch_len
let members r = r.members
let is_member r = Types.member r.members r.rid
let quorum r = Types.quorum_of r.members
let last_log_index r = r.log_base + Vec.length r.log - 1
let entry_at r i = Vec.get r.log (i - r.log_base)
let term_at r i = (entry_at r i).Types.term

let progress_snapshot r =
  Hashtbl.fold (fun peer p acc -> (peer, p.match_) :: acc) r.progress []
  |> List.sort compare

(* The replication session this leader is currently running: its vote
   (term × id) crossed with the membership log id.  Any append reply
   echoing a different session belongs to an earlier configuration or
   term and must not touch progress tracking. *)
let current_session r =
  { Types.s_term = r.term; s_leader = r.rid; s_mlog = r.config_index }

let reset_election_deadline r =
  let base = r.config.Types.election_timeout in
  let jitter = Des.Dist.uniform (Des.Sim.rng (sim r)) ~lo:0. ~hi:base in
  r.election_deadline <- now r +. base +. jitter

let voting_peers r = Types.remove_member r.members r.rid

(* Everyone the leader replicates to: voting peers plus learners. *)
let replication_targets r =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) r.progress []

let send_peer r dst pm = Des.Net.send r.net ~src:r.rid ~dst (Types.Peer pm)

let send_resp r dst ~req_id response =
  Des.Net.send r.net ~src:r.rid ~dst (Types.Client_resp { req_id; response })

let not_leader r = Types.Not_leader { hint = r.leader_hint; members = r.members }

(* ------------------------------------------------------------------ *)
(* Membership tracking (effective on append) *)

(* Incremental update for an entry just appended at [index]. *)
let note_config_append r index (cmd : Types.cmd) =
  match cmd with
  | Types.Add_replica { id; _ } ->
    r.members <- Types.add_member r.members id;
    r.config_index <- index;
    if id = r.rid then r.voting <- true
  | Types.Remove_replica { id; _ } ->
    r.members <- Types.remove_member r.members id;
    r.config_index <- index
  | Types.Create _ | Types.Write _ | Types.Delete _ | Types.Expire_session _
  | Types.Noop ->
    ()

(* Recompute from scratch: base configuration at [log_base], then every
   configuration entry in the retained log.  Needed after a conflicting
   suffix was truncated below [config_index] and on restart. *)
let rescan_membership r =
  let members = ref r.snapshot_members in
  let cidx = ref r.config_base in
  let voting =
    ref
      (r.boot_voting
      || (r.config_base > 0 && Types.member r.snapshot_members r.rid))
  in
  for i = r.log_base + 1 to last_log_index r do
    match (entry_at r i).Types.cmd with
    | Types.Add_replica { id; _ } ->
      members := Types.add_member !members id;
      cidx := i;
      if id = r.rid then voting := true
    | Types.Remove_replica { id; _ } ->
      members := Types.remove_member !members id;
      cidx := i
    | Types.Create _ | Types.Write _ | Types.Delete _ | Types.Expire_session _
    | Types.Noop ->
      ()
  done;
  r.members <- !members;
  r.config_index <- !cidx;
  r.voting <- !voting

(* A configuration change may be proposed only when none is in flight:
   the latest config entry is committed and no learner is catching up
   (single-server changes, Raft §4.1). *)
let config_change_pending r =
  r.config_index > r.commit_index
  || Hashtbl.fold
       (fun _ p acc -> acc || p.pending_join <> None)
       r.progress false

(* ------------------------------------------------------------------ *)
(* Sessions and watches (leader-local) *)

let touch_session ?timeout r session =
  let default = r.config.Types.default_session_timeout in
  (* Clamp to a sane positive range (mirrors Fault.set_probability): NaN
     makes every expiry comparison false — an immortal session — and a
     non-positive timeout expires the session at the next reaper tick
     while its client is still alive. *)
  let timeout =
    match timeout with
    | None -> default
    | Some t when Float.is_nan t || t <= 0. -> default
    | Some t -> Float.min t 86_400.
  in
  match Hashtbl.find_opt r.sessions session with
  | Some info ->
    info.last_seen <- now r;
    info.timeout <- timeout
  | None -> Hashtbl.replace r.sessions session { last_seen = now r; timeout }

let add_watch table target session =
  let sessions =
    match Hashtbl.find_opt table target with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace table target s;
      s
  in
  Hashtbl.replace sessions session ()

let fire_watch_table r table target kind =
  match Hashtbl.find_opt table target with
  | None -> ()
  | Some sessions ->
    Hashtbl.remove table target;
    Hashtbl.iter
      (fun session () ->
        Des.Net.send r.net ~src:r.rid ~dst:session
          (Types.Watch_fired { watched = target; kind }))
      sessions

let fire_watches r changed_keys =
  List.iter
    (fun key ->
      fire_watch_table r r.key_watches key Types.Key_watch;
      match Store.parent key with
      | Some parent ->
        fire_watch_table r r.child_watches parent Types.Child_watch
      | None -> ())
    changed_keys

(* ------------------------------------------------------------------ *)
(* Commit and apply *)

(* Fold the applied log prefix into a snapshot once it grows past the
   threshold; every replica compacts independently (apply is deterministic,
   so the snapshots agree). *)
let maybe_compact r =
  let threshold = r.config.Types.snapshot_threshold in
  if threshold > 0 && r.last_applied - r.log_base >= threshold then begin
    let old_base = r.log_base in
    let data = Data.Sexp.to_string (Store.to_sexp r.machine) in
    let included_term = term_at r r.last_applied in
    r.snapshot <- Some (r.last_applied, included_term, data);
    let compacted = Vec.create () in
    Vec.push compacted { Types.term = included_term; cmd = Types.Noop };
    for i = r.last_applied + 1 to last_log_index r do
      Vec.push compacted (entry_at r i)
    done;
    r.log <- compacted;
    r.log_base <- r.last_applied;
    (* The applied store carries the configuration as of the new base;
       keep the config identifier of an entry that got compacted away. *)
    r.snapshot_members <- Store.members r.machine;
    if r.config_index > old_base && r.config_index <= r.log_base then
      r.config_base <- r.config_index;
    Log.info (fun m ->
        m "replica %d: compacted log up to index %d" r.rid r.last_applied)
  end

let apply_committed r =
  while r.last_applied < r.commit_index do
    r.last_applied <- r.last_applied + 1;
    let entry = entry_at r r.last_applied in
    let result, changed = Store.apply r.machine entry.Types.cmd in
    if r.role = Leader then begin
      (match Hashtbl.find_opt r.pending r.last_applied with
       | Some (client, req_id) ->
         Hashtbl.remove r.pending r.last_applied;
         send_resp r client ~req_id (Types.Result result)
       | None -> ());
      fire_watches r changed
    end
  done;
  maybe_compact r

let advance_commit r =
  let n = last_log_index r in
  let highest = ref r.commit_index in
  for candidate = r.commit_index + 1 to n do
    if term_at r candidate = r.term then begin
      let acks = ref 0 in
      List.iter
        (fun m ->
          if m = r.rid then incr acks
          else
            match Hashtbl.find_opt r.progress m with
            | Some p when p.match_ >= candidate -> incr acks
            | Some _ | None -> ())
        r.members;
      if !acks >= quorum r then highest := candidate
    end
  done;
  if !highest > r.commit_index then begin
    r.commit_index <- !highest;
    apply_committed r
  end

(* ------------------------------------------------------------------ *)
(* Log replication (leader side) *)

let entries_from r start =
  let last = last_log_index r in
  let stop = min last (start + r.config.Types.batch_limit - 1) in
  let rec collect i acc =
    if i < start then acc else collect (i - 1) (entry_at r i :: acc)
  in
  if start > last then [] else collect stop []

let send_append r peer =
  let session = current_session r in
  let next =
    match Hashtbl.find_opt r.progress peer with
    | Some p -> max p.next 1
    | None -> max 1 (last_log_index r + 1)
  in
  if next <= r.log_base then
    (* The entries this follower needs were compacted away: ship the
       snapshot instead (Raft's InstallSnapshot). *)
    match r.snapshot with
    | Some (last_included_index, last_included_term, data) ->
      send_peer r peer
        (Types.Install_snapshot
           { session; term = r.term; last_included_index; last_included_term;
             data })
    | None ->
      Log.err (fun m ->
          m "replica %d: next_index %d below log base %d with no snapshot"
            r.rid next r.log_base)
  else
    let prev = next - 1 in
    send_peer r peer
      (Types.Append_entries
         {
           session;
           term = r.term;
           prev_log_index = prev;
           prev_log_term = term_at r prev;
           entries = entries_from r next;
           leader_commit = r.commit_index;
         })

let replicate_all r = List.iter (send_append r) (replication_targets r)

let append_local r cmd =
  Vec.push r.log { Types.term = r.term; cmd };
  last_log_index r

(* ------------------------------------------------------------------ *)
(* Group commit (paper's throughput ceiling): the per-op persistence cost
   used to be charged once per Submit, serializing client commands through
   the station one fsync at a time.  The batcher coalesces them: commands
   enqueue for free, and a flush — triggered by size or timeout — pays one
   station round for the whole batch, appends every command, and starts
   one replication round.  Acks stay quorum-gated: [apply_committed]
   releases them when the batch's entries commit. *)

(* Bounce the parked batch back to its clients (leadership lost before the
   flush): they retry against the new leader, and the store's per-session
   dedup keeps every command exactly-once.  Already-acked (unsafe-ack)
   items get no second answer. *)
let bounce_batch r =
  if r.batch <> [] then begin
    let items = r.batch in
    r.batch <- [];
    r.batch_len <- 0;
    List.iter
      (fun item ->
        if not item.b_acked then
          send_resp r item.b_client ~req_id:item.b_req (not_leader r))
      items
  end

let flush_batch r trigger =
  match r.batch with
  | [] -> ()
  | _ ->
    let items = List.rev r.batch in
    let size = r.batch_len in
    r.batch <- [];
    r.batch_len <- 0;
    (* One amortized persistence charge for the whole batch — the group
       commit.  This blocks (possibly behind earlier station jobs), so
       re-check leadership afterwards. *)
    Des.Station.request r.station ~service:r.config.Types.op_service_time;
    if r.role <> Leader then
      List.iter
        (fun item ->
          if not item.b_acked then
            send_resp r item.b_client ~req_id:item.b_req (not_leader r))
        items
    else begin
      List.iter
        (fun item ->
          let index = append_local r item.b_cmd in
          if not item.b_acked then
            Hashtbl.replace r.pending index (item.b_client, item.b_req))
        items;
      Types.note_batch r.gstats size;
      (match trigger with
       | `Full -> r.gstats.Types.flush_full <- r.gstats.Types.flush_full + 1
       | `Timeout ->
         r.gstats.Types.flush_timeout <- r.gstats.Types.flush_timeout + 1);
      replicate_all r;
      advance_commit r
    end

(* ------------------------------------------------------------------ *)
(* Role transitions *)

let become_follower r term =
  if term > r.term then begin
    r.term <- term;
    r.voted_for <- None
  end;
  if r.role <> Follower then
    Log.debug (fun m -> m "replica %d: -> follower (term %d)" r.rid r.term);
  r.role <- Follower;
  (* A deposed leader's parked batch never flushes; bounce it so its
     clients retry at the new leader instead of waiting out the timeout. *)
  bounce_batch r;
  reset_election_deadline r

let expire_dead_sessions r =
  let t = now r in
  let dead =
    Hashtbl.fold
      (fun session info acc ->
        if t -. info.last_seen > info.timeout then session :: acc else acc)
      r.sessions []
  in
  List.iter
    (fun session ->
      Log.info (fun m -> m "replica %d: expiring session %d" r.rid session);
      Hashtbl.remove r.sessions session;
      ignore (append_local r (Types.Expire_session session)))
    dead;
  if dead <> [] then begin
    replicate_all r;
    advance_commit r
  end

(* The replication pump doubles as the heartbeat: it periodically sends
   append-entries (possibly empty) to every follower, retransmitting any
   suffix the follower is missing.  It runs as its own process so that a
   leader whose main loop is busy charging ops to the service station still
   keeps the cluster stable. *)
let spawn_leader_duties r =
  let epoch = r.term in
  let still_leading () =
    (not r.stop_requested) && r.role = Leader && r.term = epoch
  in
  let pump =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d-pump" r.rid) (sim r)
      (fun () ->
        while still_leading () do
          replicate_all r;
          Des.Proc.sleep r.config.Types.heartbeat_interval
        done)
  in
  let reaper =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d-sessions" r.rid) (sim r)
      (fun () ->
        while still_leading () do
          Des.Proc.sleep r.config.Types.session_check_interval;
          if still_leading () then expire_dead_sessions r
        done)
  in
  (* Timeout side of the group-commit batcher: each empty->nonempty batch
     transition sends one token; the flusher sleeps out the batch's
     deadline and flushes whatever is still parked.  A batch that hit
     [group_size] first was already flushed inline — the leftover token
     finds an empty batch and the wakeup no-ops. *)
  let flusher =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d-group" r.rid) (sim r)
      (fun () ->
        while still_leading () do
          (match
             Des.Channel.recv_timeout r.batch_signal
               ~timeout:r.config.Types.session_check_interval
           with
           | None -> ()
           | Some () ->
             (* Sleep out the deadline of whatever batch is open when the
                sleep ends — the one this token announced may have been
                size-flushed and replaced meanwhile. *)
             while still_leading () && r.batch <> [] && r.batch_deadline > now r
             do
               Des.Proc.sleep (r.batch_deadline -. now r)
             done;
             if still_leading () then flush_batch r `Timeout)
        done)
  in
  r.procs <- pump :: reaper :: flusher :: r.procs

let become_leader r =
  Log.info (fun m -> m "replica %d: -> leader (term %d)" r.rid r.term);
  r.role <- Leader;
  r.leader_hint <- Some r.rid;
  (* Fresh batcher state for this leadership: any parked batch was bounced
     on step-down, and a fresh signal channel keeps a lingering flusher
     from an earlier epoch from eating this epoch's wakeup tokens. *)
  r.batch <- [];
  r.batch_len <- 0;
  r.batch_signal <-
    Des.Channel.create ~name:(Printf.sprintf "replica-%d-batch" r.rid) ();
  (* Fresh progress for the effective configuration; any learner being
     caught up by the previous leader is dropped (its client retries). *)
  Hashtbl.reset r.progress;
  List.iter
    (fun peer ->
      Hashtbl.replace r.progress peer
        { next = last_log_index r + 1; match_ = 0; pending_join = None })
    (voting_peers r);
  (* Commit the new term immediately (Raft's no-op trick), so earlier-term
     entries become committable. *)
  ignore (append_local r Types.Noop);
  (* Grace period for sessions inherited from the previous leader: anything
     owning an ephemeral gets a fresh expiry clock. *)
  List.iter (touch_session r) (Store.ephemeral_owners r.machine);
  spawn_leader_duties r;
  replicate_all r;
  advance_commit r

let start_election r =
  if not (r.voting && is_member r) then
    (* Learners and removed servers do not campaign (Raft §4.2.1/§4.2.3);
       push the deadline out instead of spinning on it every tick. *)
    reset_election_deadline r
  else begin
    r.term <- r.term + 1;
    r.role <- Candidate;
    r.voted_for <- Some r.rid;
    r.votes <- [ r.rid ];
    reset_election_deadline r;
    Log.debug (fun m -> m "replica %d: election for term %d" r.rid r.term);
    let last = last_log_index r in
    List.iter
      (fun peer ->
        send_peer r peer
          (Types.Request_vote
             { term = r.term; last_log_index = last; last_log_term = term_at r last }))
      (voting_peers r);
    if quorum r = 1 then become_leader r
  end

(* ------------------------------------------------------------------ *)
(* Peer message handling *)

let log_up_to_date r ~last_log_index:cand_last ~last_log_term:cand_term =
  let my_last = last_log_index r in
  let my_term = term_at r my_last in
  cand_term > my_term || (cand_term = my_term && cand_last >= my_last)

let handle_request_vote r src ~term ~last_log_index ~last_log_term =
  if not (Types.member r.members src) then
    (* A removed server that never learned of its removal keeps
       campaigning on ever-higher terms; adopting its term would depose
       legitimate leaders (Raft §4.2.3).  Refuse without adopting. *)
    send_peer r src (Types.Vote_reply { term = r.term; granted = false })
  else begin
    if term > r.term then become_follower r term;
    let granted =
      term = r.term
      && (match r.voted_for with None -> true | Some v -> v = src)
      && log_up_to_date r ~last_log_index ~last_log_term
    in
    if granted then begin
      r.voted_for <- Some src;
      reset_election_deadline r
    end;
    send_peer r src (Types.Vote_reply { term = r.term; granted })
  end

let handle_vote_reply r src ~term ~granted =
  if not (Types.member r.members src) then ()
  else if term > r.term then become_follower r term
  else if r.role = Candidate && term = r.term && granted then begin
    if not (List.mem src r.votes) then r.votes <- src :: r.votes;
    (* Count votes against the effective configuration: a vote from a
       node removed since the ballot went out must not count. *)
    if Types.count_votes ~members:r.members r.votes >= quorum r then
      become_leader r
  end

let handle_append_entries r src ~session ~term ~prev_log_index ~prev_log_term
    ~entries ~leader_commit =
  let reply ~success ~match_index =
    send_peer r src
      (Types.Append_reply { session; term = r.term; success; match_index })
  in
  if term < r.term then reply ~success:false ~match_index:0
  else begin
    become_follower r term;
    r.leader_hint <- Some src;
    if prev_log_index < r.log_base then
      (* Everything at or below the log base is covered by our snapshot:
         acknowledge it so the leader advances next_index. *)
      reply ~success:true ~match_index:r.log_base
    else if
      prev_log_index > last_log_index r
      || term_at r prev_log_index <> prev_log_term
    then
      (* Log mismatch: hint the leader where to back up to. *)
      reply ~success:false
        ~match_index:
          (min (last_log_index r) (max r.log_base (prev_log_index - 1)))
    else begin
      (* Append entries, truncating any conflicting suffix; duplicates from
         retransmissions are recognized and skipped. *)
      let config_truncated = ref false in
      List.iteri
        (fun offset (entry : Types.log_entry) ->
          let index = prev_log_index + 1 + offset in
          if index <= r.log_base then () (* already in the snapshot *)
          else if index <= last_log_index r then begin
            if term_at r index <> entry.Types.term then begin
              (* The truncated suffix may contain configuration entries;
                 recompute the effective membership afterwards. *)
              if r.config_index >= index then config_truncated := true;
              Vec.truncate r.log (index - r.log_base);
              Vec.push r.log entry;
              note_config_append r index entry.Types.cmd
            end
          end
          else begin
            Vec.push r.log entry;
            note_config_append r index entry.Types.cmd
          end)
        entries;
      if !config_truncated then rescan_membership r;
      let matched = prev_log_index + List.length entries in
      if leader_commit > r.commit_index then begin
        r.commit_index <- min leader_commit (last_log_index r);
        apply_committed r
      end;
      reply ~success:true ~match_index:matched
    end
  end

(* A caught-up learner gets its deferred Add entry appended: from here on
   the new configuration is effective at this leader and the node counts
   toward quorum.  The client's reply rides the normal pending path (the
   Add commits, Store.apply returns Config_ok). *)
let maybe_promote r p =
  match p.pending_join with
  | Some j when p.match_ >= j.target ->
    p.pending_join <- None;
    r.stats.Types.catchups <- r.stats.Types.catchups + 1;
    let index = append_local r j.add_cmd in
    note_config_append r index j.add_cmd;
    r.stats.Types.joins <- r.stats.Types.joins + 1;
    let client, req_id = j.reply_to in
    Hashtbl.replace r.pending index (client, req_id);
    Log.info (fun m ->
        m "replica %d: learner caught up, membership now [%s]" r.rid
          (String.concat ";" (List.map string_of_int r.members)));
    replicate_all r
  | Some _ | None -> ()

let handle_append_reply r src ~session ~term ~success ~match_index =
  if term > r.term then become_follower r term
  else if r.role = Leader && term = r.term then begin
    if r.config.Types.session_ids && session <> current_session r then
      (* Echo from a previous replication session — an earlier term, or a
         configuration that has since changed.  If this node was removed
         and re-added in between, the stale match index describes a log
         the current incarnation does not have; honouring it would
         corrupt progress tracking. *)
      r.stats.Types.stale_sessions_rejected <-
        r.stats.Types.stale_sessions_rejected + 1
    else
      match Hashtbl.find_opt r.progress src with
      | None -> () (* not a replication target (removed meanwhile) *)
      | Some p ->
        if success then begin
          p.match_ <- max p.match_ match_index;
          p.next <- p.match_ + 1;
          maybe_promote r p;
          advance_commit r
        end
        else begin
          p.next <- max 1 (match_index + 1);
          send_append r src
        end
  end

let handle_install_snapshot r src ~session ~term ~last_included_index
    ~last_included_term ~data =
  let reply ~success ~match_index =
    send_peer r src
      (Types.Append_reply { session; term = r.term; success; match_index })
  in
  if term < r.term then reply ~success:false ~match_index:0
  else begin
    become_follower r term;
    r.leader_hint <- Some src;
    if last_included_index <= r.last_applied then
      (* Stale snapshot: we already have this prefix applied. *)
      reply ~success:true ~match_index:r.last_applied
    else begin
      match Result.bind (Data.Sexp.of_string data) Store.of_sexp with
      | Error reason ->
        Log.err (fun m -> m "replica %d: corrupt snapshot: %s" r.rid reason)
      | Ok machine ->
        r.machine <- machine;
        let fresh = Vec.create () in
        Vec.push fresh { Types.term = last_included_term; cmd = Types.Noop };
        r.log <- fresh;
        r.log_base <- last_included_index;
        r.commit_index <- last_included_index;
        r.last_applied <- last_included_index;
        r.snapshot <- Some (last_included_index, last_included_term, data);
        (* The snapshot carries the configuration as of its index; with
           the log reset, it is also the effective one.  A learner listed
           in it has its membership confirmed. *)
        r.snapshot_members <- Store.members machine;
        r.config_base <- last_included_index;
        r.members <- r.snapshot_members;
        r.config_index <- r.config_base;
        if Types.member r.snapshot_members r.rid then r.voting <- true;
        Log.info (fun m ->
            m "replica %d: installed snapshot at index %d" r.rid
              last_included_index);
        reply ~success:true ~match_index:last_included_index
    end
  end

let handle_peer r src pm =
  match pm with
  | Types.Request_vote { term; last_log_index; last_log_term } ->
    handle_request_vote r src ~term ~last_log_index ~last_log_term
  | Types.Vote_reply { term; granted } -> handle_vote_reply r src ~term ~granted
  | Types.Append_entries
      { session; term; prev_log_index; prev_log_term; entries; leader_commit }
    ->
    handle_append_entries r src ~session ~term ~prev_log_index ~prev_log_term
      ~entries ~leader_commit
  | Types.Append_reply { session; term; success; match_index } ->
    handle_append_reply r src ~session ~term ~success ~match_index
  | Types.Install_snapshot
      { session; term; last_included_index; last_included_term; data } ->
    handle_install_snapshot r src ~session ~term ~last_included_index
      ~last_included_term ~data

(* ------------------------------------------------------------------ *)
(* Client request handling *)

let serve_query r src query =
  match query with
  | Types.Get key -> Types.Got (Store.get r.machine key)
  | Types.Children prefix -> Types.Children_are (Store.children r.machine prefix)
  | Types.First_child prefix ->
    Types.First_child_is (Store.first_child r.machine prefix)
  | Types.First_child_value prefix ->
    Types.First_child_value_is
      (match Store.first_child r.machine prefix with
       | None -> None
       | Some key ->
         (match Store.get r.machine key with
          | Some (value, _) -> Some (key, value)
          | None -> None))
  | Types.Count_children prefix ->
    Types.Child_count (Store.count_children r.machine prefix)
  | Types.Watch_key key ->
    add_watch r.key_watches key src;
    Types.Watch_set
  | Types.Watch_children prefix ->
    add_watch r.child_watches prefix src;
    Types.Watch_set

(* Membership changes intercept the submit path: the entry must not be
   appended blindly — single change at a time, adds of unknown nodes go
   through learner catch-up first, and obviously-settled requests
   (already a member / already gone) answer immediately so ensemble-level
   retries converge. *)
let handle_config_change r src ~req_id cmd =
  let answer result = send_resp r src ~req_id (Types.Result result) in
  match cmd with
  | Types.Add_replica { id; _ } ->
    if Types.member r.members id then answer Types.Config_ok
    else if config_change_pending r then
      answer (Types.Op_failed Types.Config_pending)
    else if id < 0 || id >= Des.Net.node_count r.net || id = r.rid then
      answer (Types.Op_failed Types.Config_invalid)
    else begin
      let p =
        match Hashtbl.find_opt r.progress id with
        | Some p -> p
        | None ->
          let p =
            { next = last_log_index r + 1; match_ = 0; pending_join = None }
          in
          Hashtbl.replace r.progress id p;
          p
      in
      p.pending_join <-
        Some { target = last_log_index r; add_cmd = cmd; reply_to = (src, req_id) };
      Log.info (fun m ->
          m "replica %d: catching up learner %d to index %d" r.rid id
            (last_log_index r));
      send_append r id
    end
  | Types.Remove_replica { id; _ } ->
    if not (Types.member r.members id) then answer Types.Config_ok
    else if config_change_pending r then
      answer (Types.Op_failed Types.Config_pending)
    else if id = r.rid || List.length r.members <= 1 then
      (* The leader never removes itself (no joint consensus here), and
         the last member must stay. *)
      answer (Types.Op_failed Types.Config_invalid)
    else begin
      let index = append_local r cmd in
      note_config_append r index cmd;
      r.stats.Types.leaves <- r.stats.Types.leaves + 1;
      (* Stop replicating to it; its in-flight replies now carry a stale
         session id and are rejected. *)
      Hashtbl.remove r.progress id;
      Hashtbl.replace r.pending index (src, req_id);
      Log.info (fun m ->
          m "replica %d: removing %d, membership now [%s]" r.rid id
            (String.concat ";" (List.map string_of_int r.members)));
      replicate_all r;
      advance_commit r
    end
  | Types.Create _ | Types.Write _ | Types.Delete _ | Types.Expire_session _
  | Types.Noop ->
    assert false

let handle_client r src ~req_id ~session_timeout request =
  if r.role <> Leader then send_resp r src ~req_id (not_leader r)
  else begin
    touch_session ~timeout:session_timeout r src;
    match request with
    | Types.Ping -> send_resp r src ~req_id Types.Pong
    | Types.Goodbye ->
      (* ZooKeeper's closeSession: drop the session's ephemerals without
         waiting for the failure detector. *)
      Hashtbl.remove r.sessions src;
      ignore (append_local r (Types.Expire_session src));
      replicate_all r;
      advance_commit r;
      send_resp r src ~req_id Types.Pong
    | Types.Query query ->
      send_resp r src ~req_id (Types.Query_result (serve_query r src query))
    | Types.Submit ((Types.Add_replica _ | Types.Remove_replica _) as cmd) ->
      Des.Station.request r.station ~service:r.config.Types.op_service_time;
      if r.role <> Leader then send_resp r src ~req_id (not_leader r)
      else handle_config_change r src ~req_id cmd
    | Types.Submit cmd when r.config.Types.group_commit ->
      (* Group commit: enqueue for free; the batch pays one amortized
         station round when it flushes on size or timeout.  The ack is
         released by [apply_committed] once the batch reaches quorum. *)
      let acked =
        r.config.Types.unsafe_ack
        && begin
          (* DURABILITY ABLATION: answer from a speculative apply before
             the command is replicated.  The per-session dedup absorbs
             the duplicate apply when the batch commits; a leader crash
             before quorum loses a command the client believes durable —
             the hazard the commit-storm preset convicts. *)
          let result, changed = Store.apply r.machine cmd in
          send_resp r src ~req_id (Types.Result result);
          fire_watches r changed;
          r.gstats.Types.unsafe_acks <- r.gstats.Types.unsafe_acks + 1;
          true
        end
      in
      if not acked then
        r.gstats.Types.acks_deferred <- r.gstats.Types.acks_deferred + 1;
      let was_empty = r.batch = [] in
      r.batch <-
        { b_client = src; b_req = req_id; b_cmd = cmd; b_acked = acked }
        :: r.batch;
      r.batch_len <- r.batch_len + 1;
      if was_empty then begin
        r.batch_deadline <- now r +. r.config.Types.group_timeout;
        Des.Channel.send r.batch_signal ()
      end;
      if r.batch_len >= r.config.Types.group_size then flush_batch r `Full
    | Types.Submit cmd ->
      (* Ungrouped baseline: the modeled per-op I/O cost blocks the main
         loop, so client commands serialize here one fsync at a time —
         the paper's throughput ceiling, kept as an ablation. *)
      Des.Station.request r.station ~service:r.config.Types.op_service_time;
      if r.role <> Leader then send_resp r src ~req_id (not_leader r)
      else begin
        let index = append_local r cmd in
        Hashtbl.replace r.pending index (src, req_id);
        replicate_all r;
        advance_commit r
      end
  end

(* ------------------------------------------------------------------ *)
(* Main loop and lifecycle *)

let main_loop r () =
  reset_election_deadline r;
  while not r.stop_requested do
    (match
       Des.Channel.recv_timeout
         (Des.Net.inbox r.net r.rid)
         ~timeout:r.config.Types.tick
     with
     | Some (src, Types.Peer pm) -> handle_peer r src pm
     | Some (src, Types.Client_req { req_id; session_timeout; request }) ->
       handle_client r src ~req_id ~session_timeout request
     | Some (_, (Types.Client_resp _ | Types.Watch_fired _)) ->
       () (* not addressed to replicas; ignore *)
     | None -> ());
    if r.role <> Leader && now r >= r.election_deadline then start_election r
  done

let create ?(learner = false) ?stats ?gstats ~net ~id ~members ~config () =
  let base_members = List.sort compare members in
  let log = Vec.create () in
  Vec.push log { Types.term = 0; cmd = Types.Noop };
  {
    rid = id;
    net;
    base_members;
    boot_voting = not learner;
    stats =
      (match stats with
       | Some s -> s
       | None -> Types.fresh_membership_stats ());
    gstats =
      (match gstats with
       | Some s -> s
       | None -> Types.fresh_group_stats ());
    config;
    term = 0;
    voted_for = None;
    log;
    log_base = 0;
    snapshot = None;
    members = base_members;
    config_index = 0;
    snapshot_members = base_members;
    config_base = 0;
    voting = not learner;
    role = Follower;
    leader_hint = None;
    commit_index = 0;
    last_applied = 0;
    machine = Store.create ~members:base_members ();
    progress = Hashtbl.create 8;
    votes = [];
    election_deadline = 0.;
    pending = Hashtbl.create 64;
    sessions = Hashtbl.create 16;
    key_watches = Hashtbl.create 64;
    child_watches = Hashtbl.create 64;
    station = Des.Station.create ~name:(Printf.sprintf "replica-%d-io" id) (Des.Net.sim net);
    batch = [];
    batch_len = 0;
    batch_deadline = 0.;
    batch_signal =
      Des.Channel.create ~name:(Printf.sprintf "replica-%d-batch" id) ();
    stop_requested = false;
    procs = [];
  }

let start r =
  r.stop_requested <- false;
  let p =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d" r.rid) (sim r)
      (main_loop r)
  in
  r.procs <- [ p ]

let stop r =
  r.stop_requested <- true;
  List.iter Des.Proc.kill r.procs;
  r.procs <- []

let reset_volatile r =
  r.role <- Follower;
  r.leader_hint <- None;
  (* Stable state (term, vote, log, snapshot) survives; the applied store
     is rebuilt from the snapshot, then the retained log replays on top. *)
  (match r.snapshot with
   | Some (index, _, data) ->
     (match Result.bind (Data.Sexp.of_string data) Store.of_sexp with
      | Ok machine ->
        r.machine <- machine;
        r.commit_index <- index;
        r.last_applied <- index;
        r.snapshot_members <- Store.members machine;
        r.config_base <- index
      | Error reason ->
        Log.err (fun m -> m "replica %d: corrupt snapshot on restart: %s" r.rid reason);
        r.machine <- Store.create ~members:r.base_members ();
        r.commit_index <- r.log_base;
        r.last_applied <- r.log_base;
        r.snapshot_members <- r.base_members;
        r.config_base <- 0)
   | None ->
     r.machine <- Store.create ~members:r.base_members ();
     r.commit_index <- 0;
     r.last_applied <- 0;
     r.snapshot_members <- r.base_members;
     r.config_base <- 0);
  (* Effective membership follows the surviving log and snapshot. *)
  r.voting <- r.boot_voting;
  rescan_membership r;
  Hashtbl.reset r.progress;
  r.votes <- [];
  Hashtbl.reset r.pending;
  Hashtbl.reset r.sessions;
  Hashtbl.reset r.key_watches;
  Hashtbl.reset r.child_watches;
  (* A fresh station: jobs queued before the crash are gone.  Likewise the
     group-commit batch — a crashed leader's unflushed commands die with
     it (their clients never saw an ack and retry). *)
  r.station <-
    Des.Station.create ~name:(Printf.sprintf "replica-%d-io" r.rid) (sim r);
  r.batch <- [];
  r.batch_len <- 0;
  r.batch_signal <-
    Des.Channel.create ~name:(Printf.sprintf "replica-%d-batch" r.rid) ()
