let log_src = Logs.Src.create "coord.replica" ~doc:"coordination replica"

module Log = (val Logs.src_log log_src : Logs.LOG)

type role = Follower | Candidate | Leader

type session_info = { mutable last_seen : float; mutable timeout : float }

type t = {
  rid : int;
  net : Types.msg Des.Net.t;
  replicas : int;
  config : Types.config;
  (* State that survives a crash (stable storage). *)
  mutable term : int;
  mutable voted_for : int option;
  mutable log : Types.log_entry Vec.t;
      (* element 0 is a sentinel standing for absolute index [log_base];
         absolute index i lives at [i - log_base] *)
  mutable log_base : int;
  mutable snapshot : (int * int * string) option;
      (* (last_included_index, last_included_term, serialized store);
         stable storage, like term/vote/log *)
  (* Volatile state. *)
  mutable role : role;
  mutable leader_hint : int option;
  mutable commit_index : int;
  mutable last_applied : int;
  mutable machine : Store.t;
  next_index : int array;
  match_index : int array;
  mutable votes : int list;
  mutable election_deadline : float;
  pending : (int, int * int) Hashtbl.t; (* log index -> client node, req_id *)
  sessions : (int, session_info) Hashtbl.t;
  key_watches : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  child_watches : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable station : Des.Station.t;
  mutable stop_requested : bool;
  mutable procs : Des.Proc.t list;
}

let sim r = Des.Net.sim r.net
let now r = Des.Sim.now (sim r)
let id r = r.rid
let is_leader r = r.role = Leader
let term r = r.term
let commit_index r = r.commit_index
let log_length r = Vec.length r.log - 1
let log_base r = r.log_base
let has_snapshot r = Option.is_some r.snapshot
let store r = r.machine
let station_busy_time r = Des.Station.busy_time r.station
let station_queue_length r = Des.Station.queue_length r.station
let quorum r = (r.replicas / 2) + 1
let last_log_index r = r.log_base + Vec.length r.log - 1
let entry_at r i = Vec.get r.log (i - r.log_base)
let term_at r i = (entry_at r i).Types.term

let reset_election_deadline r =
  let base = r.config.Types.election_timeout in
  let jitter = Des.Dist.uniform (Des.Sim.rng (sim r)) ~lo:0. ~hi:base in
  r.election_deadline <- now r +. base +. jitter

let peers r = List.filter (fun p -> p <> r.rid) (List.init r.replicas Fun.id)
let send_peer r dst pm = Des.Net.send r.net ~src:r.rid ~dst (Types.Peer pm)

let send_resp r dst ~req_id response =
  Des.Net.send r.net ~src:r.rid ~dst (Types.Client_resp { req_id; response })

(* ------------------------------------------------------------------ *)
(* Sessions and watches (leader-local) *)

let touch_session ?timeout r session =
  let timeout =
    Option.value timeout ~default:r.config.Types.default_session_timeout
  in
  match Hashtbl.find_opt r.sessions session with
  | Some info ->
    info.last_seen <- now r;
    info.timeout <- timeout
  | None -> Hashtbl.replace r.sessions session { last_seen = now r; timeout }

let add_watch table target session =
  let sessions =
    match Hashtbl.find_opt table target with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace table target s;
      s
  in
  Hashtbl.replace sessions session ()

let fire_watch_table r table target kind =
  match Hashtbl.find_opt table target with
  | None -> ()
  | Some sessions ->
    Hashtbl.remove table target;
    Hashtbl.iter
      (fun session () ->
        Des.Net.send r.net ~src:r.rid ~dst:session
          (Types.Watch_fired { watched = target; kind }))
      sessions

let fire_watches r changed_keys =
  List.iter
    (fun key ->
      fire_watch_table r r.key_watches key Types.Key_watch;
      match Store.parent key with
      | Some parent ->
        fire_watch_table r r.child_watches parent Types.Child_watch
      | None -> ())
    changed_keys

(* ------------------------------------------------------------------ *)
(* Commit and apply *)

(* Fold the applied log prefix into a snapshot once it grows past the
   threshold; every replica compacts independently (apply is deterministic,
   so the snapshots agree). *)
let maybe_compact r =
  let threshold = r.config.Types.snapshot_threshold in
  if threshold > 0 && r.last_applied - r.log_base >= threshold then begin
    let data = Data.Sexp.to_string (Store.to_sexp r.machine) in
    let included_term = term_at r r.last_applied in
    r.snapshot <- Some (r.last_applied, included_term, data);
    let compacted = Vec.create () in
    Vec.push compacted { Types.term = included_term; cmd = Types.Noop };
    for i = r.last_applied + 1 to last_log_index r do
      Vec.push compacted (entry_at r i)
    done;
    r.log <- compacted;
    r.log_base <- r.last_applied;
    Log.info (fun m ->
        m "replica %d: compacted log up to index %d" r.rid r.last_applied)
  end

let apply_committed r =
  while r.last_applied < r.commit_index do
    r.last_applied <- r.last_applied + 1;
    let entry = entry_at r r.last_applied in
    let result, changed = Store.apply r.machine entry.Types.cmd in
    if r.role = Leader then begin
      (match Hashtbl.find_opt r.pending r.last_applied with
       | Some (client, req_id) ->
         Hashtbl.remove r.pending r.last_applied;
         send_resp r client ~req_id (Types.Result result)
       | None -> ());
      fire_watches r changed
    end
  done;
  maybe_compact r

let advance_commit r =
  let n = last_log_index r in
  let highest = ref r.commit_index in
  for candidate = r.commit_index + 1 to n do
    if term_at r candidate = r.term then begin
      let acks = ref 1 (* self *) in
      Array.iteri
        (fun peer m -> if peer <> r.rid && m >= candidate then incr acks)
        r.match_index;
      if !acks >= quorum r then highest := candidate
    end
  done;
  if !highest > r.commit_index then begin
    r.commit_index <- !highest;
    apply_committed r
  end

(* ------------------------------------------------------------------ *)
(* Log replication (leader side) *)

let entries_from r start =
  let last = last_log_index r in
  let stop = min last (start + r.config.Types.batch_limit - 1) in
  let rec collect i acc =
    if i < start then acc else collect (i - 1) (entry_at r i :: acc)
  in
  if start > last then [] else collect stop []

let send_append r peer =
  let next = max r.next_index.(peer) 1 in
  if next <= r.log_base then
    (* The entries this follower needs were compacted away: ship the
       snapshot instead (Raft's InstallSnapshot). *)
    match r.snapshot with
    | Some (last_included_index, last_included_term, data) ->
      send_peer r peer
        (Types.Install_snapshot
           { term = r.term; last_included_index; last_included_term; data })
    | None ->
      Log.err (fun m ->
          m "replica %d: next_index %d below log base %d with no snapshot"
            r.rid next r.log_base)
  else
    let prev = next - 1 in
    send_peer r peer
      (Types.Append_entries
         {
           term = r.term;
           prev_log_index = prev;
           prev_log_term = term_at r prev;
           entries = entries_from r next;
           leader_commit = r.commit_index;
         })

let replicate_all r = List.iter (send_append r) (peers r)

let append_local r cmd =
  Vec.push r.log { Types.term = r.term; cmd };
  last_log_index r

(* ------------------------------------------------------------------ *)
(* Role transitions *)

let become_follower r term =
  if term > r.term then begin
    r.term <- term;
    r.voted_for <- None
  end;
  if r.role <> Follower then
    Log.debug (fun m -> m "replica %d: -> follower (term %d)" r.rid r.term);
  r.role <- Follower;
  reset_election_deadline r

let expire_dead_sessions r =
  let t = now r in
  let dead =
    Hashtbl.fold
      (fun session info acc ->
        if t -. info.last_seen > info.timeout then session :: acc else acc)
      r.sessions []
  in
  List.iter
    (fun session ->
      Log.info (fun m -> m "replica %d: expiring session %d" r.rid session);
      Hashtbl.remove r.sessions session;
      ignore (append_local r (Types.Expire_session session)))
    dead;
  if dead <> [] then replicate_all r

(* The replication pump doubles as the heartbeat: it periodically sends
   append-entries (possibly empty) to every follower, retransmitting any
   suffix the follower is missing.  It runs as its own process so that a
   leader whose main loop is busy charging ops to the service station still
   keeps the cluster stable. *)
let spawn_leader_duties r =
  let epoch = r.term in
  let still_leading () =
    (not r.stop_requested) && r.role = Leader && r.term = epoch
  in
  let pump =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d-pump" r.rid) (sim r)
      (fun () ->
        while still_leading () do
          replicate_all r;
          Des.Proc.sleep r.config.Types.heartbeat_interval
        done)
  in
  let reaper =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d-sessions" r.rid) (sim r)
      (fun () ->
        while still_leading () do
          Des.Proc.sleep r.config.Types.session_check_interval;
          if still_leading () then expire_dead_sessions r
        done)
  in
  r.procs <- pump :: reaper :: r.procs

let become_leader r =
  Log.info (fun m -> m "replica %d: -> leader (term %d)" r.rid r.term);
  r.role <- Leader;
  r.leader_hint <- Some r.rid;
  Array.fill r.next_index 0 r.replicas (last_log_index r + 1);
  Array.fill r.match_index 0 r.replicas 0;
  (* Commit the new term immediately (Raft's no-op trick), so earlier-term
     entries become committable. *)
  ignore (append_local r Types.Noop);
  (* Grace period for sessions inherited from the previous leader: anything
     owning an ephemeral gets a fresh expiry clock. *)
  List.iter (touch_session r) (Store.ephemeral_owners r.machine);
  spawn_leader_duties r;
  replicate_all r

let start_election r =
  r.term <- r.term + 1;
  r.role <- Candidate;
  r.voted_for <- Some r.rid;
  r.votes <- [ r.rid ];
  reset_election_deadline r;
  Log.debug (fun m -> m "replica %d: election for term %d" r.rid r.term);
  let last = last_log_index r in
  List.iter
    (fun peer ->
      send_peer r peer
        (Types.Request_vote
           { term = r.term; last_log_index = last; last_log_term = term_at r last }))
    (peers r);
  if quorum r = 1 then become_leader r

(* ------------------------------------------------------------------ *)
(* Peer message handling *)

let log_up_to_date r ~last_log_index:cand_last ~last_log_term:cand_term =
  let my_last = last_log_index r in
  let my_term = term_at r my_last in
  cand_term > my_term || (cand_term = my_term && cand_last >= my_last)

let handle_request_vote r src ~term ~last_log_index ~last_log_term =
  if term > r.term then become_follower r term;
  let granted =
    term = r.term
    && (match r.voted_for with None -> true | Some v -> v = src)
    && log_up_to_date r ~last_log_index ~last_log_term
  in
  if granted then begin
    r.voted_for <- Some src;
    reset_election_deadline r
  end;
  send_peer r src (Types.Vote_reply { term = r.term; granted })

let handle_vote_reply r src ~term ~granted =
  if term > r.term then become_follower r term
  else if r.role = Candidate && term = r.term && granted then begin
    if not (List.mem src r.votes) then r.votes <- src :: r.votes;
    if List.length r.votes >= quorum r then become_leader r
  end

let handle_append_entries r src ~term ~prev_log_index ~prev_log_term ~entries
    ~leader_commit =
  if term < r.term then
    send_peer r src
      (Types.Append_reply { term = r.term; success = false; match_index = 0 })
  else begin
    become_follower r term;
    r.leader_hint <- Some src;
    if prev_log_index < r.log_base then
      (* Everything at or below the log base is covered by our snapshot:
         acknowledge it so the leader advances next_index. *)
      send_peer r src
        (Types.Append_reply
           { term = r.term; success = true; match_index = r.log_base })
    else if
      prev_log_index > last_log_index r
      || term_at r prev_log_index <> prev_log_term
    then
      (* Log mismatch: hint the leader where to back up to. *)
      send_peer r src
        (Types.Append_reply
           {
             term = r.term;
             success = false;
             match_index =
               min (last_log_index r) (max r.log_base (prev_log_index - 1));
           })
    else begin
      (* Append entries, truncating any conflicting suffix; duplicates from
         retransmissions are recognized and skipped. *)
      List.iteri
        (fun offset (entry : Types.log_entry) ->
          let index = prev_log_index + 1 + offset in
          if index <= r.log_base then () (* already in the snapshot *)
          else if index <= last_log_index r then begin
            if term_at r index <> entry.Types.term then begin
              Vec.truncate r.log (index - r.log_base);
              Vec.push r.log entry
            end
          end
          else Vec.push r.log entry)
        entries;
      let matched = prev_log_index + List.length entries in
      if leader_commit > r.commit_index then begin
        r.commit_index <- min leader_commit (last_log_index r);
        apply_committed r
      end;
      send_peer r src
        (Types.Append_reply { term = r.term; success = true; match_index = matched })
    end
  end

let handle_append_reply r src ~term ~success ~match_index =
  if term > r.term then become_follower r term
  else if r.role = Leader && term = r.term then
    if success then begin
      r.match_index.(src) <- max r.match_index.(src) match_index;
      r.next_index.(src) <- r.match_index.(src) + 1;
      advance_commit r
    end
    else begin
      r.next_index.(src) <- max 1 (match_index + 1);
      send_append r src
    end

let handle_install_snapshot r src ~term ~last_included_index
    ~last_included_term ~data =
  if term < r.term then
    send_peer r src
      (Types.Append_reply { term = r.term; success = false; match_index = 0 })
  else begin
    become_follower r term;
    r.leader_hint <- Some src;
    if last_included_index <= r.last_applied then
      (* Stale snapshot: we already have this prefix applied. *)
      send_peer r src
        (Types.Append_reply
           { term = r.term; success = true; match_index = r.last_applied })
    else begin
      match Result.bind (Data.Sexp.of_string data) Store.of_sexp with
      | Error reason ->
        Log.err (fun m -> m "replica %d: corrupt snapshot: %s" r.rid reason)
      | Ok machine ->
        r.machine <- machine;
        let fresh = Vec.create () in
        Vec.push fresh { Types.term = last_included_term; cmd = Types.Noop };
        r.log <- fresh;
        r.log_base <- last_included_index;
        r.commit_index <- last_included_index;
        r.last_applied <- last_included_index;
        r.snapshot <- Some (last_included_index, last_included_term, data);
        Log.info (fun m ->
            m "replica %d: installed snapshot at index %d" r.rid
              last_included_index);
        send_peer r src
          (Types.Append_reply
             { term = r.term; success = true; match_index = last_included_index })
    end
  end

let handle_peer r src pm =
  match pm with
  | Types.Request_vote { term; last_log_index; last_log_term } ->
    handle_request_vote r src ~term ~last_log_index ~last_log_term
  | Types.Vote_reply { term; granted } -> handle_vote_reply r src ~term ~granted
  | Types.Append_entries
      { term; prev_log_index; prev_log_term; entries; leader_commit } ->
    handle_append_entries r src ~term ~prev_log_index ~prev_log_term ~entries
      ~leader_commit
  | Types.Append_reply { term; success; match_index } ->
    handle_append_reply r src ~term ~success ~match_index
  | Types.Install_snapshot { term; last_included_index; last_included_term; data } ->
    handle_install_snapshot r src ~term ~last_included_index
      ~last_included_term ~data

(* ------------------------------------------------------------------ *)
(* Client request handling *)

let serve_query r src query =
  match query with
  | Types.Get key -> Types.Got (Store.get r.machine key)
  | Types.Children prefix -> Types.Children_are (Store.children r.machine prefix)
  | Types.First_child prefix ->
    Types.First_child_is (Store.first_child r.machine prefix)
  | Types.First_child_value prefix ->
    Types.First_child_value_is
      (match Store.first_child r.machine prefix with
       | None -> None
       | Some key ->
         (match Store.get r.machine key with
          | Some (value, _) -> Some (key, value)
          | None -> None))
  | Types.Count_children prefix ->
    Types.Child_count (Store.count_children r.machine prefix)
  | Types.Watch_key key ->
    add_watch r.key_watches key src;
    Types.Watch_set
  | Types.Watch_children prefix ->
    add_watch r.child_watches prefix src;
    Types.Watch_set

let handle_client r src ~req_id ~session_timeout request =
  if r.role <> Leader then
    send_resp r src ~req_id (Types.Not_leader r.leader_hint)
  else begin
    touch_session ~timeout:session_timeout r src;
    match request with
    | Types.Ping -> send_resp r src ~req_id Types.Pong
    | Types.Goodbye ->
      (* ZooKeeper's closeSession: drop the session's ephemerals without
         waiting for the failure detector. *)
      Hashtbl.remove r.sessions src;
      ignore (append_local r (Types.Expire_session src));
      replicate_all r;
      if r.replicas = 1 then advance_commit r;
      send_resp r src ~req_id Types.Pong
    | Types.Query query ->
      send_resp r src ~req_id (Types.Query_result (serve_query r src query))
    | Types.Submit cmd ->
      (* The modeled per-op I/O cost: this blocks the main loop, so client
         commands queue here under load — the paper's throughput ceiling. *)
      Des.Station.request r.station ~service:r.config.Types.op_service_time;
      if r.role <> Leader then
        send_resp r src ~req_id (Types.Not_leader r.leader_hint)
      else begin
        let index = append_local r cmd in
        Hashtbl.replace r.pending index (src, req_id);
        replicate_all r;
        if r.replicas = 1 then advance_commit r
      end
  end

(* ------------------------------------------------------------------ *)
(* Main loop and lifecycle *)

let main_loop r () =
  reset_election_deadline r;
  while not r.stop_requested do
    (match
       Des.Channel.recv_timeout
         (Des.Net.inbox r.net r.rid)
         ~timeout:r.config.Types.tick
     with
     | Some (src, Types.Peer pm) -> handle_peer r src pm
     | Some (src, Types.Client_req { req_id; session_timeout; request }) ->
       handle_client r src ~req_id ~session_timeout request
     | Some (_, (Types.Client_resp _ | Types.Watch_fired _)) ->
       () (* not addressed to replicas; ignore *)
     | None -> ());
    if r.role <> Leader && now r >= r.election_deadline then start_election r
  done

let create ~net ~id ~replicas ~config =
  let log = Vec.create () in
  Vec.push log { Types.term = 0; cmd = Types.Noop };
  {
    rid = id;
    net;
    replicas;
    config;
    term = 0;
    voted_for = None;
    log;
    log_base = 0;
    snapshot = None;
    role = Follower;
    leader_hint = None;
    commit_index = 0;
    last_applied = 0;
    machine = Store.create ();
    next_index = Array.make replicas 1;
    match_index = Array.make replicas 0;
    votes = [];
    election_deadline = 0.;
    pending = Hashtbl.create 64;
    sessions = Hashtbl.create 16;
    key_watches = Hashtbl.create 64;
    child_watches = Hashtbl.create 64;
    station = Des.Station.create ~name:(Printf.sprintf "replica-%d-io" id) (Des.Net.sim net);
    stop_requested = false;
    procs = [];
  }

let start r =
  r.stop_requested <- false;
  let p =
    Des.Proc.spawn ~name:(Printf.sprintf "replica-%d" r.rid) (sim r)
      (main_loop r)
  in
  r.procs <- [ p ]

let stop r =
  r.stop_requested <- true;
  List.iter Des.Proc.kill r.procs;
  r.procs <- []

let reset_volatile r =
  r.role <- Follower;
  r.leader_hint <- None;
  (* Stable state (term, vote, log, snapshot) survives; the applied store
     is rebuilt from the snapshot, then the retained log replays on top. *)
  (match r.snapshot with
   | Some (index, _, data) ->
     (match Result.bind (Data.Sexp.of_string data) Store.of_sexp with
      | Ok machine ->
        r.machine <- machine;
        r.commit_index <- index;
        r.last_applied <- index
      | Error reason ->
        Log.err (fun m -> m "replica %d: corrupt snapshot on restart: %s" r.rid reason);
        r.machine <- Store.create ();
        r.commit_index <- r.log_base;
        r.last_applied <- r.log_base)
   | None ->
     r.machine <- Store.create ();
     r.commit_index <- 0;
     r.last_applied <- 0);
  Array.fill r.next_index 0 r.replicas 1;
  Array.fill r.match_index 0 r.replicas 0;
  r.votes <- [];
  Hashtbl.reset r.pending;
  Hashtbl.reset r.sessions;
  Hashtbl.reset r.key_watches;
  Hashtbl.reset r.child_watches;
  (* A fresh station: jobs queued before the crash are gone. *)
  r.station <-
    Des.Station.create ~name:(Printf.sprintf "replica-%d-io" r.rid) (sim r)
