(** ZooKeeper-style client recipes used by TROPIC: replicated FIFO queues
    (inputQ, phyQ) and leader election for the controller group.

    Both recipes treat watch events purely as wake-up hints and re-check
    state on a timeout, so they stay correct when one-shot watches are lost
    across a coordination-service leader change. *)

(** {1 Distributed FIFO queue} *)

(** [enqueue client ~queue value] appends an item; returns its key. *)
val enqueue : Client.t -> queue:string -> string -> string

(** [dequeue client ~queue ()] removes and returns the oldest item
    [(key, value)], blocking until one is available (or until [timeout]
    elapses, returning [None]).  Safe with concurrent consumers: losers of
    the delete race simply retry. *)
val dequeue :
  Client.t -> queue:string -> ?timeout:float -> unit -> (string * string) option

(** Oldest item without removing it. *)
val peek : Client.t -> queue:string -> (string * string) option

(** Number of items currently queued. *)
val queue_length : Client.t -> queue:string -> int

(** {1 Leader election} *)

(** [join_election client ~election ~payload] registers an ephemeral
    sequential member node; returns the member key.  The member with the
    smallest key is the leader; dead members disappear with their session. *)
val join_election : Client.t -> election:string -> payload:string -> string

(** [is_leader client ~election ~member] — does [member] currently sort
    first? *)
val is_leader : Client.t -> election:string -> member:string -> bool

(** Block until [member] is the smallest member of the election group. *)
val await_leadership : Client.t -> election:string -> member:string -> unit

(** Current leader's payload, if any member exists. *)
val leader_payload : Client.t -> election:string -> string option

(** {1 Ownership leases}

    A lease is an election whose winner owns a resource (a shard of the
    resource tree): the ephemeral sequential member node {e is} the lease
    — it expires with the holder's session, so fail-over reuses the
    election machinery unchanged. *)

(** Race for [lease]; returns this contender's member key. *)
val acquire_lease : Client.t -> lease:string -> payload:string -> string

val holds_lease : Client.t -> lease:string -> member:string -> bool

(** Block until [member] holds [lease]. *)
val await_lease : Client.t -> lease:string -> member:string -> unit

(** Current holder's payload, if anyone holds the lease. *)
val lease_holder : Client.t -> lease:string -> string option
