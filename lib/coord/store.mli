(** The replicated state machine: a flat, versioned key-value namespace with
    ZooKeeper-style ephemeral and sequential keys.

    Every replica applies committed log entries to its own copy; {!apply} is
    deterministic, so replicas stay identical.  Per-session request
    deduplication lives here too, making client retries exactly-once. *)

type t

(** [create ?members ()] — [members] is the boot-time ensemble
    configuration.  Every instance (boot replicas and later-added
    learners alike) must pass the {e same} canonical list: the member set
    is part of the replicated state, so replaying the log from different
    bases would diverge. *)
val create : ?members:int list -> unit -> t

(** Configuration as of the applied prefix (boot list plus every applied
    [Add_replica]/[Remove_replica]), sorted. *)
val members : t -> int list

(** [apply t cmd] executes one committed command.  Returns its result and
    the list of keys whose state changed (used by the leader to fire
    watches).  Duplicate [(session, req)] pairs return the cached result
    without re-executing. *)
val apply : t -> Types.cmd -> Types.op_result * string list

(** {1 Reads (not replicated)} *)

val get : t -> string -> (string * int) option

(** Direct children of [prefix]: keys of the form [prefix ^ "/" ^ seg] with
    no further separator, returned as full keys in lexicographic order. *)
val children : t -> string -> string list

(* Smallest direct child of [prefix], if any — O(log n). *)
val first_child : t -> string -> string option

(** Number of direct children of [prefix]. *)
val count_children : t -> string -> int

val exists : t -> string -> bool

(** Number of keys present. *)
val size : t -> int

(** Sessions currently owning at least one ephemeral key. *)
val ephemeral_owners : t -> int list

(** [parent key] is the prefix before the last ['/'], if any — the key a
    child-watch on which should fire when [key] changes. *)
val parent : string -> string option

(** {1 Snapshot codec (log compaction)}

    [apply] is deterministic, so every replica's store is identical at a
    given applied index; a serialized store therefore serves as a Raft-style
    snapshot: it captures entries, the sequential-name counter and the
    request-deduplication table. *)

val to_sexp : t -> Data.Sexp.t
val of_sexp : Data.Sexp.t -> (t, string) result
