let poll_interval = 1.0
(* Watches are only hints; every blocking loop re-checks at least this often. *)

(* ------------------------------------------------------------------ *)
(* Queue *)

let enqueue client ~queue value =
  match
    Client.create client ~sequential:true ~key:(queue ^ "/item-") ~value ()
  with
  | Ok key -> key
  | Error e ->
    failwith
      (Printf.sprintf "Recipes.enqueue: %s"
         (Format.asprintf "%a" Types.pp_op_error e))

let head_item client ~queue = Client.first_child client queue

let peek client ~queue =
  match head_item client ~queue with
  | None -> None
  | Some key ->
    (match Client.get client key with
     | Some (value, _) -> Some (key, value)
     | None -> None)

let queue_length client ~queue = Client.count_children client queue

let dequeue client ~queue ?timeout () =
  let deadline =
    Option.map (fun d -> Des.Proc.now () +. d) timeout
  in
  let remaining () =
    match deadline with
    | None -> poll_interval
    | Some d -> Float.min poll_interval (d -. Des.Proc.now ())
  in
  let expired () =
    match deadline with None -> false | Some d -> Des.Proc.now () >= d
  in
  let rec loop () =
    match Client.first_child_value client queue with
    | Some (key, value) ->
      (match Client.delete client ~key () with
       | Ok () -> Some (key, value)
       | Error Types.Key_missing -> loop () (* lost the take race *)
       | Error e ->
         failwith
           (Printf.sprintf "Recipes.dequeue: %s"
              (Format.asprintf "%a" Types.pp_op_error e)))
    | None ->
      if expired () then None
      else begin
        Client.watch_children client queue;
        (* Re-check: an item may have arrived before the watch was set. *)
        if head_item client ~queue <> None then loop ()
        else begin
          let wait = remaining () in
          if wait > 0. then ignore (Client.await_change client ~timeout:wait);
          if expired () then None else loop ()
        end
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Leader election *)

let join_election client ~election ~payload =
  match
    Client.create client ~ephemeral:true ~sequential:true
      ~key:(election ^ "/m-") ~value:payload ()
  with
  | Ok key -> key
  | Error e ->
    failwith
      (Printf.sprintf "Recipes.join_election: %s"
         (Format.asprintf "%a" Types.pp_op_error e))

let members client ~election = Client.get_children client election

let is_leader client ~election ~member =
  match members client ~election with
  | [] -> false
  | head :: _ -> String.equal head member

let await_leadership client ~election ~member =
  let rec loop () =
    match members client ~election with
    | [] -> failwith "Recipes.await_leadership: member vanished"
    | head :: _ when String.equal head member -> ()
    | group ->
      (* Watch the member just ahead of us (the classic herd-avoiding
         pattern), then re-check. *)
      let predecessor =
        let rec find_prev = function
          | a :: b :: _ when String.equal b member -> a
          | _ :: rest -> find_prev rest
          | [] -> List.hd group
        in
        find_prev group
      in
      Client.watch_key client predecessor;
      ignore (Client.await_change client ~timeout:poll_interval);
      loop ()
  in
  loop ()

let leader_payload client ~election =
  match members client ~election with
  | [] -> None
  | head :: _ ->
    (match Client.get client head with
     | Some (payload, _) -> Some payload
     | None -> None)

(* Ownership leases are elections by another name: the ephemeral
   sequential member node doubles as the lease (it dies with the session,
   so fail-over needs no separate expiry machinery), and holding the
   lease means sorting first.  Shard controllers race for their shard's
   lease exactly as the unsharded controller group raced for the single
   election. *)

let acquire_lease client ~lease ~payload =
  join_election client ~election:lease ~payload

let holds_lease client ~lease ~member = is_leader client ~election:lease ~member
let await_lease client ~lease ~member = await_leadership client ~election:lease ~member
let lease_holder client ~lease = leader_payload client ~election:lease
