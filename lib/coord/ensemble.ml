type t = {
  esim : Des.Sim.t;
  enet : Types.msg Des.Net.t;
  econfig : Types.config;
  replicas : Replica.t array;
  up : bool array;
  mutable next_client : int;
  client_slots : int;
}

(* Datacenter LAN: sub-millisecond round trips, like the paper's testbed. *)
let lan_latency ~src:_ ~dst:_ ~rng = Des.Dist.uniform rng ~lo:0.0001 ~hi:0.0003

let create ?(replicas = 3) ?(clients = 64) ?(config = Types.default_config) sim =
  let enet = Des.Net.create ~latency:lan_latency sim ~nodes:(replicas + clients) in
  let members =
    Array.init replicas (fun id ->
        Replica.create ~net:enet ~id ~replicas ~config)
  in
  Array.iter Replica.start members;
  {
    esim = sim;
    enet;
    econfig = config;
    replicas = members;
    up = Array.make replicas true;
    next_client = replicas;
    client_slots = clients;
  }

let sim e = e.esim
let net e = e.enet
let config e = e.econfig
let replica_count e = Array.length e.replicas
let replica e i = e.replicas.(i)
let replica_up e i = e.up.(i)

let connect e ?session_timeout ~name () =
  if e.next_client >= Array.length e.replicas + e.client_slots then
    failwith "Ensemble.connect: out of client id slots";
  let id = e.next_client in
  e.next_client <- e.next_client + 1;
  Client.connect ~net:e.enet ~id ~replicas:(Array.length e.replicas)
    ~config:e.econfig ?session_timeout ~name ()

let crash_replica e i =
  if e.up.(i) then begin
    e.up.(i) <- false;
    Replica.stop e.replicas.(i);
    Des.Net.crash e.enet i
  end

let restart_replica e i =
  if not e.up.(i) then begin
    e.up.(i) <- true;
    Replica.reset_volatile e.replicas.(i);
    Des.Net.restart e.enet i;
    Replica.start e.replicas.(i)
  end

let leader_id e =
  let best = ref None in
  Array.iteri
    (fun i r ->
      if e.up.(i) && Replica.is_leader r then
        match !best with
        | Some (_, best_term) when best_term >= Replica.term r -> ()
        | Some _ | None -> best := Some (i, Replica.term r))
    e.replicas;
  Option.map fst !best

let await_leader e =
  let rec wait () =
    match leader_id e with
    | Some leader -> leader
    | None ->
      Des.Proc.sleep (e.econfig.Types.election_timeout /. 4.);
      wait ()
  in
  wait ()

let leader_store e =
  match leader_id e with
  | Some leader -> Replica.store e.replicas.(leader)
  | None -> failwith "Ensemble.leader_store: no leader"
