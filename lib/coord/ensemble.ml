type event = { ev_name : string; ev_attrs : (string * string) list }

type t = {
  esim : Des.Sim.t;
  enet : Types.msg Des.Net.t;
  econfig : Types.config;
  slots : (int, Replica.t) Hashtbl.t; (* node id -> current instance *)
  up : (int, bool) Hashtbl.t;
  stats : Types.membership_stats;
  gstats : Types.group_stats;
  boot_members : int list;
  mutable next_client : int;
  client_base : int;
  client_slots : int;
  spare_base : int;
  spares : int;
  mutable control : Client.t option; (* lazy session for config changes *)
  on_event : (event -> unit) option;
}

(* Datacenter LAN: sub-millisecond round trips, like the paper's testbed. *)
let lan_latency ~src:_ ~dst:_ ~rng = Des.Dist.uniform rng ~lo:0.0001 ~hi:0.0003

let emit e ev_name ev_attrs =
  match e.on_event with
  | Some f -> f { ev_name; ev_attrs }
  | None -> ()

let create ?(replicas = 3) ?(clients = 64) ?(spares = 4)
    ?(config = Types.default_config) ?on_event sim =
  (* Spare node ids live *above* the client range, so client session ids
     are independent of how many spares exist (trace stability). *)
  let nodes = replicas + clients + spares in
  let enet = Des.Net.create ~latency:lan_latency sim ~nodes in
  let boot_members = List.init replicas Fun.id in
  let stats = Types.fresh_membership_stats () in
  let gstats = Types.fresh_group_stats () in
  let slots = Hashtbl.create 8 in
  let up = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let r =
        Replica.create ~stats ~gstats ~net:enet ~id ~members:boot_members
          ~config ()
      in
      Hashtbl.replace slots id r;
      Hashtbl.replace up id true;
      Replica.start r)
    boot_members;
  {
    esim = sim;
    enet;
    econfig = config;
    slots;
    up;
    stats;
    gstats;
    boot_members;
    next_client = replicas;
    client_base = replicas;
    client_slots = clients;
    spare_base = replicas + clients;
    spares;
    control = None;
    on_event;
  }

let sim e = e.esim
let net e = e.enet
let config e = e.econfig
let membership_stats e = e.stats
let group_stats e = e.gstats
let replica_count e = Hashtbl.length e.slots

let replica_ids e =
  List.sort compare (Hashtbl.fold (fun i _ acc -> i :: acc) e.slots [])

let replica e i =
  match Hashtbl.find_opt e.slots i with
  | Some r -> r
  | None -> failwith (Printf.sprintf "Ensemble.replica: no replica at node %d" i)

let replica_up e i = Hashtbl.find_opt e.up i = Some true

let connect e ?session_timeout ~name () =
  if e.next_client >= e.client_base + e.client_slots then
    failwith "Ensemble.connect: out of client id slots";
  let id = e.next_client in
  e.next_client <- e.next_client + 1;
  Client.connect ~net:e.enet ~id ~members:(replica_ids e) ~config:e.econfig
    ?session_timeout ~name ()

let crash_replica e i =
  if replica_up e i then begin
    Hashtbl.replace e.up i false;
    Replica.stop (replica e i);
    Des.Net.crash e.enet i
  end

let restart_replica e i =
  if Hashtbl.mem e.slots i && not (replica_up e i) then begin
    Hashtbl.replace e.up i true;
    Replica.reset_volatile (replica e i);
    Des.Net.restart e.enet i;
    Replica.start (replica e i)
  end

let leader_id e =
  let best = ref None in
  Hashtbl.iter
    (fun i r ->
      if replica_up e i && Replica.is_leader r && Replica.is_member r then
        match !best with
        | Some (_, best_term) when best_term >= Replica.term r -> ()
        | Some _ | None -> best := Some (i, Replica.term r))
    e.slots;
  Option.map fst !best

let await_leader e =
  let rec wait () =
    match leader_id e with
    | Some leader -> leader
    | None ->
      Des.Proc.sleep (e.econfig.Types.election_timeout /. 4.);
      wait ()
  in
  wait ()

let leader_store e =
  match leader_id e with
  | Some leader -> Replica.store (replica e leader)
  | None -> failwith "Ensemble.leader_store: no leader"

let members e =
  match leader_id e with
  | Some leader -> Replica.members (replica e leader)
  | None -> replica_ids e

(* ------------------------------------------------------------------ *)
(* Dynamic membership *)

let control_client e =
  match e.control with
  | Some c when not (Client.closed c) -> c
  | Some _ | None ->
    let c = connect e ~name:"ensemble-control" () in
    e.control <- Some c;
    c

(* Config changes are serialized by the leader (one at a time); retry
   through transient [Config_pending] windows until it settles. *)
let rec settle_config e what op =
  match op (control_client e) with
  | Ok () -> ()
  | Error Types.Config_pending ->
    Des.Proc.sleep (e.econfig.Types.heartbeat_interval *. 2.);
    settle_config e what op
  | Error err ->
    failwith (Format.asprintf "Ensemble.%s: %a" what Types.pp_op_error err)

let add_replica e ?id () =
  let id =
    match id with
    | Some id -> id
    | None ->
      let rec find i =
        if i >= e.spare_base + e.spares then
          failwith "Ensemble.add_replica: out of spare node ids"
        else if Hashtbl.mem e.slots i then find (i + 1)
        else i
      in
      find e.spare_base
  in
  (* A fresh instance: if the node id was used before (re-adding a removed
     replica), its old incarnation dies and the node's inbox is flushed.
     The new instance boots as a learner with an empty log — it must be
     caught up by the leader before it counts toward quorum. *)
  (match Hashtbl.find_opt e.slots id with
   | Some old -> Replica.stop old
   | None -> ());
  Des.Net.crash e.enet id;
  Des.Net.restart e.enet id;
  let r =
    Replica.create ~learner:true ~stats:e.stats ~gstats:e.gstats ~net:e.enet
      ~id ~members:e.boot_members ~config:e.econfig ()
  in
  Hashtbl.replace e.slots id r;
  Hashtbl.replace e.up id true;
  Replica.start r;
  emit e "coord.join" [ ("replica", string_of_int id) ];
  settle_config e "add_replica" (fun c -> Client.add_replica c ~id);
  emit e "coord.joined" [ ("replica", string_of_int id) ];
  id

(* The removed instance is left *running*: a decommissioned server does
   not learn of its removal synchronously, and its in-flight traffic is
   exactly what the replication session ids must fence off. *)
let remove_replica e id =
  emit e "coord.leave" [ ("replica", string_of_int id) ];
  settle_config e "remove_replica" (fun c -> Client.remove_replica c ~id)
