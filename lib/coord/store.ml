module Smap = Map.Make (String)
module Imap = Map.Make (Int)

type entry = { value : string; version : int; owner : int option }

type t = {
  mutable entries : entry Smap.t;
  mutable seq_counter : int;
  mutable dedup : (int * Types.op_result) Imap.t; (* session -> last req, result *)
  mutable members : int list;
      (* ensemble configuration as of the *applied* prefix; every
         instance must boot from the same list or replay diverges *)
}

let create ?(members = []) () =
  {
    entries = Smap.empty;
    seq_counter = 0;
    dedup = Imap.empty;
    members = List.sort compare members;
  }

let members t = t.members

let parent key =
  match String.rindex_opt key '/' with
  | None -> None
  | Some i -> Some (String.sub key 0 i)

let get t key =
  Option.map (fun e -> (e.value, e.version)) (Smap.find_opt key t.entries)

let exists t key = Smap.mem key t.entries
let size t = Smap.cardinal t.entries

let children t prefix =
  let prefix_slash = prefix ^ "/" in
  let plen = String.length prefix_slash in
  let is_direct_child key =
    String.length key > plen
    && String.sub key 0 plen = prefix_slash
    && not (String.contains_from key plen '/')
  in
  (* Walk keys from the prefix upward; Smap iterates in order so we can stop
     at the first key past the prefix range. *)
  let rec collect seq acc =
    match Seq.uncons seq with
    | None -> List.rev acc
    | Some ((key, _), rest) ->
      if String.length key >= plen && String.sub key 0 plen = prefix_slash then
        collect rest (if is_direct_child key then key :: acc else acc)
      else if key > prefix_slash then List.rev acc
      else collect rest acc
  in
  collect (Smap.to_seq_from prefix_slash t.entries) []

let first_child t prefix =
  let prefix_slash = prefix ^ "/" in
  let plen = String.length prefix_slash in
  let rec scan seq =
    match Seq.uncons seq with
    | None -> None
    | Some ((key, _), rest) ->
      if String.length key >= plen && String.sub key 0 plen = prefix_slash then
        if not (String.contains_from key plen '/') then Some key else scan rest
      else None
  in
  scan (Smap.to_seq_from prefix_slash t.entries)

let count_children t prefix = List.length (children t prefix)

let ephemeral_owners t =
  Smap.fold
    (fun _ e acc ->
      match e.owner with
      | Some s when not (List.mem s acc) -> s :: acc
      | Some _ | None -> acc)
    t.entries []

let do_create t ~session ~key ~value ~ephemeral ~sequential =
  let final_key =
    if sequential then begin
      t.seq_counter <- t.seq_counter + 1;
      Printf.sprintf "%s%010d" key t.seq_counter
    end
    else key
  in
  if Smap.mem final_key t.entries then
    (Types.Op_failed Types.Key_exists, [])
  else begin
    let owner = if ephemeral then Some session else None in
    t.entries <- Smap.add final_key { value; version = 1; owner } t.entries;
    (Types.Created final_key, [ final_key ])
  end

let do_write t ~key ~value ~expect_version =
  match Smap.find_opt key t.entries, expect_version with
  | None, Some _ -> (Types.Op_failed Types.Key_missing, [])
  | None, None ->
    t.entries <- Smap.add key { value; version = 1; owner = None } t.entries;
    (Types.Written 1, [ key ])
  | Some e, Some v when e.version <> v -> (Types.Op_failed Types.Bad_version, [])
  | Some e, (Some _ | None) ->
    let e' = { e with value; version = e.version + 1 } in
    t.entries <- Smap.add key e' t.entries;
    (Types.Written e'.version, [ key ])

let do_delete t ~key ~expect_version =
  match Smap.find_opt key t.entries, expect_version with
  | None, _ -> (Types.Op_failed Types.Key_missing, [])
  | Some e, Some v when e.version <> v -> (Types.Op_failed Types.Bad_version, [])
  | Some _, (Some _ | None) ->
    t.entries <- Smap.remove key t.entries;
    (Types.Deleted_ok, [ key ])

let do_expire t session =
  let doomed =
    Smap.fold
      (fun key e acc -> if e.owner = Some session then key :: acc else acc)
      t.entries []
  in
  List.iter (fun key -> t.entries <- Smap.remove key t.entries) doomed;
  t.dedup <- Imap.remove session t.dedup;
  (Types.Expired_ok, List.rev doomed)

let apply t cmd =
  let deduped session req run =
    match Imap.find_opt session t.dedup with
    | Some (last_req, cached) when req <= last_req -> (cached, [])
    | Some _ | None ->
      let result, changed = run () in
      t.dedup <- Imap.add session (req, result) t.dedup;
      (result, changed)
  in
  match cmd with
  | Types.Create { session; req; key; value; ephemeral; sequential } ->
    deduped session req (fun () ->
        do_create t ~session ~key ~value ~ephemeral ~sequential)
  | Types.Write { session; req; key; value; expect_version } ->
    deduped session req (fun () -> do_write t ~key ~value ~expect_version)
  | Types.Delete { session; req; key; expect_version } ->
    deduped session req (fun () -> do_delete t ~key ~expect_version)
  | Types.Expire_session session -> do_expire t session
  | Types.Noop -> (Types.Noop_ok, [])
  | Types.Add_replica { session; req; id } ->
    deduped session req (fun () ->
        t.members <- Types.add_member t.members id;
        (Types.Config_ok, []))
  | Types.Remove_replica { session; req; id } ->
    deduped session req (fun () ->
        t.members <- Types.remove_member t.members id;
        (Types.Config_ok, []))

(* ------------------------------------------------------------------ *)
(* Snapshot codec *)

let result_to_sexp =
  let open Data.Sexp in
  function
  | Types.Created k -> List [ Atom "created"; Atom k ]
  | Types.Written v -> List [ Atom "written"; of_int v ]
  | Types.Deleted_ok -> List [ Atom "deleted" ]
  | Types.Expired_ok -> List [ Atom "expired" ]
  | Types.Noop_ok -> List [ Atom "noop" ]
  | Types.Config_ok -> List [ Atom "config" ]
  | Types.Op_failed Types.Key_missing -> List [ Atom "failed"; Atom "missing" ]
  | Types.Op_failed Types.Key_exists -> List [ Atom "failed"; Atom "exists" ]
  | Types.Op_failed Types.Bad_version -> List [ Atom "failed"; Atom "version" ]
  | Types.Op_failed Types.Config_pending -> List [ Atom "failed"; Atom "pending" ]
  | Types.Op_failed Types.Config_invalid -> List [ Atom "failed"; Atom "invalid" ]

let result_of_sexp =
  let open Data.Sexp in
  function
  | List [ Atom "created"; Atom k ] -> Ok (Types.Created k)
  | List [ Atom "written"; v ] ->
    Result.map (fun v -> Types.Written v) (to_int v)
  | List [ Atom "deleted" ] -> Ok Types.Deleted_ok
  | List [ Atom "expired" ] -> Ok Types.Expired_ok
  | List [ Atom "noop" ] -> Ok Types.Noop_ok
  | List [ Atom "config" ] -> Ok Types.Config_ok
  | List [ Atom "failed"; Atom "missing" ] -> Ok (Types.Op_failed Types.Key_missing)
  | List [ Atom "failed"; Atom "exists" ] -> Ok (Types.Op_failed Types.Key_exists)
  | List [ Atom "failed"; Atom "version" ] -> Ok (Types.Op_failed Types.Bad_version)
  | List [ Atom "failed"; Atom "pending" ] ->
    Ok (Types.Op_failed Types.Config_pending)
  | List [ Atom "failed"; Atom "invalid" ] ->
    Ok (Types.Op_failed Types.Config_invalid)
  | other -> Error ("Store.result_of_sexp: " ^ to_string other)

let to_sexp t =
  let open Data.Sexp in
  List
    [
      of_int t.seq_counter;
      List (List.map of_int t.members);
      List
        (Smap.fold
           (fun key e acc ->
             List
               [
                 Atom key; Atom e.value; of_int e.version;
                 (match e.owner with Some s -> of_int s | None -> Atom "none");
               ]
             :: acc)
           t.entries []);
      List
        (Imap.fold
           (fun session (req, result) acc ->
             List [ of_int session; of_int req; result_to_sexp result ] :: acc)
           t.dedup []);
    ]

let ( let* ) r f = Result.bind r f

let of_sexp sexp =
  match sexp with
  | Data.Sexp.List
      [ seq; Data.Sexp.List members; Data.Sexp.List entries;
        Data.Sexp.List dedup ] ->
    let* seq_counter = Data.Sexp.to_int seq in
    let* members =
      List.fold_left
        (fun acc m ->
          let* acc = acc in
          let* m = Data.Sexp.to_int m in
          Ok (m :: acc))
        (Ok []) members
    in
    let members = List.sort compare members in
    let* entries =
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Data.Sexp.List [ Data.Sexp.Atom key; Data.Sexp.Atom value; version; owner ] ->
            let* version = Data.Sexp.to_int version in
            let* owner =
              match owner with
              | Data.Sexp.Atom "none" -> Ok None
              | o -> Result.map (fun s -> Some s) (Data.Sexp.to_int o)
            in
            Ok (Smap.add key { value; version; owner } acc)
          | other -> Error ("bad store entry: " ^ Data.Sexp.to_string other))
        (Ok Smap.empty) entries
    in
    let* dedup =
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Data.Sexp.List [ session; req; result ] ->
            let* session = Data.Sexp.to_int session in
            let* req = Data.Sexp.to_int req in
            let* result = result_of_sexp result in
            Ok (Imap.add session (req, result) acc)
          | other -> Error ("bad dedup entry: " ^ Data.Sexp.to_string other))
        (Ok Imap.empty) dedup
    in
    Ok { entries; seq_counter; dedup; members }
  | other -> Error ("Store.of_sexp: " ^ Data.Sexp.to_string other)
