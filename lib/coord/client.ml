let log_src = Logs.Src.create "coord.client" ~doc:"coordination client"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  session : int;
  cname : string;
  net : Types.msg Des.Net.t;
  mutable known : int list;
      (* last known membership, sorted; refreshed from Not_leader replies
         so leader search follows config changes, not boot-time ids *)
  config : Types.config;
  session_timeout : float;
  mutable leader_hint : int;
  mutable next_req_id : int;
  mutable cmd_seq : int;
  pending : (int, Types.response -> unit) Hashtbl.t;
  event_channel : Types.watch_event Des.Channel.t;
  submit_tokens : unit Des.Channel.t; (* one token: serializes submits *)
  mutable procs : Des.Proc.t list;
  mutable is_closed : bool;
}

let session_id c = c.session
let name c = c.cname
let events c = c.event_channel
let closed c = c.is_closed
let sim c = Des.Net.sim c.net

(* ------------------------------------------------------------------ *)
(* Request/response plumbing *)

let fresh_req_id c =
  c.next_req_id <- c.next_req_id + 1;
  c.next_req_id

(* Wait for the response to [req_id]; [None] on timeout. *)
let wait_response c req_id =
  Des.Proc.suspend (fun _p resume ->
      let timer = ref None in
      let cancel_timer () =
        match !timer with None -> () | Some ev -> Des.Sim.cancel ev
      in
      Hashtbl.replace c.pending req_id (fun response ->
          cancel_timer ();
          resume (Ok (Some response)));
      timer :=
        Some
          (Des.Sim.after (sim c) c.config.Types.request_timeout (fun () ->
               if Hashtbl.mem c.pending req_id then begin
                 Hashtbl.remove c.pending req_id;
                 resume (Ok None)
               end));
      fun () ->
        Hashtbl.remove c.pending req_id;
        cancel_timer ())

(* Cycle through the last known membership (not a boot-time id range:
   replicas added later must be probed, removed ones skipped). *)
let rotate_leader c =
  match c.known with
  | [] -> ()
  | members ->
    let rec next = function
      | [] -> List.hd members
      | m :: rest -> if m > c.leader_hint then m else next rest
    in
    c.leader_hint <- next members

(* Send a request and keep retrying until some leader answers it.  Safe for
   replicated commands thanks to state-machine deduplication. *)
let rpc c request =
  let req_id = fresh_req_id c in
  let rec attempt () =
    (* A concurrently closed session just terminates the caller quietly, the
       same way a killed process would stop. *)
    if c.is_closed then raise Des.Proc.Killed;
    Des.Net.send c.net ~src:c.session ~dst:c.leader_hint
      (Types.Client_req
         { req_id; session_timeout = c.session_timeout; request });
    match wait_response c req_id with
    | Some (Types.Not_leader { hint; members }) ->
      if members <> [] then c.known <- members;
      (match hint with
       | Some leader when leader <> c.leader_hint && List.mem leader c.known ->
         c.leader_hint <- leader
       | Some _ | None ->
         rotate_leader c;
         Des.Proc.sleep (c.config.Types.request_timeout /. 10.));
      attempt ()
    | Some response -> response
    | None ->
      rotate_leader c;
      attempt ()
  in
  attempt ()

let protocol_error what response =
  failwith
    (Printf.sprintf "Coord.Client: unexpected response to %s (%s)" what
       (match response with
        | Types.Pong -> "pong"
        | Types.Result _ -> "result"
        | Types.Query_result _ -> "query-result"
        | Types.Not_leader _ -> "not-leader"))

(* ------------------------------------------------------------------ *)
(* Replicated commands *)

let with_submit_lock c f =
  Des.Channel.recv c.submit_tokens;
  Fun.protect ~finally:(fun () -> Des.Channel.send c.submit_tokens ()) f

let submit c make_cmd =
  with_submit_lock c (fun () ->
      c.cmd_seq <- c.cmd_seq + 1;
      let cmd = make_cmd ~session:c.session ~req:c.cmd_seq in
      match rpc c (Types.Submit cmd) with
      | Types.Result result -> result
      | other -> protocol_error "submit" other)

let create c ?(ephemeral = false) ?(sequential = false) ~key ~value () =
  match
    submit c (fun ~session ~req ->
        Types.Create { session; req; key; value; ephemeral; sequential })
  with
  | Types.Created final_key -> Ok final_key
  | Types.Op_failed e -> Error e
  | other ->
    failwith
      (Printf.sprintf "Coord.Client.create: bad result (%s)"
         (Format.asprintf "%a" Types.pp_op_result other))

let write c ?expect_version ~key ~value () =
  match
    submit c (fun ~session ~req ->
        Types.Write { session; req; key; value; expect_version })
  with
  | Types.Written version -> Ok version
  | Types.Op_failed e -> Error e
  | other ->
    failwith
      (Printf.sprintf "Coord.Client.write: bad result (%s)"
         (Format.asprintf "%a" Types.pp_op_result other))

let delete c ?expect_version ~key () =
  match
    submit c (fun ~session ~req ->
        Types.Delete { session; req; key; expect_version })
  with
  | Types.Deleted_ok -> Ok ()
  | Types.Op_failed e -> Error e
  | other ->
    failwith
      (Printf.sprintf "Coord.Client.delete: bad result (%s)"
         (Format.asprintf "%a" Types.pp_op_result other))

(* ------------------------------------------------------------------ *)
(* Membership changes *)

let add_replica c ~id =
  match
    submit c (fun ~session ~req -> Types.Add_replica { session; req; id })
  with
  | Types.Config_ok -> Ok ()
  | Types.Op_failed e -> Error e
  | other ->
    failwith
      (Printf.sprintf "Coord.Client.add_replica: bad result (%s)"
         (Format.asprintf "%a" Types.pp_op_result other))

let remove_replica c ~id =
  match
    submit c (fun ~session ~req -> Types.Remove_replica { session; req; id })
  with
  | Types.Config_ok -> Ok ()
  | Types.Op_failed e -> Error e
  | other ->
    failwith
      (Printf.sprintf "Coord.Client.remove_replica: bad result (%s)"
         (Format.asprintf "%a" Types.pp_op_result other))

(* ------------------------------------------------------------------ *)
(* Queries *)

let query c q =
  match rpc c (Types.Query q) with
  | Types.Query_result result -> result
  | other -> protocol_error "query" other

let get c key =
  match query c (Types.Get key) with
  | Types.Got entry -> entry
  | Types.Children_are _ | Types.First_child_is _ | Types.First_child_value_is _
  | Types.Child_count _ | Types.Watch_set ->
    failwith "Coord.Client.get: bad query result"

let get_children c prefix =
  match query c (Types.Children prefix) with
  | Types.Children_are keys -> keys
  | Types.Got _ | Types.First_child_is _ | Types.First_child_value_is _
  | Types.Child_count _ | Types.Watch_set ->
    failwith "Coord.Client.get_children: bad query result"

let first_child c prefix =
  match query c (Types.First_child prefix) with
  | Types.First_child_is k -> k
  | Types.Got _ | Types.Children_are _ | Types.First_child_value_is _
  | Types.Child_count _ | Types.Watch_set ->
    failwith "Coord.Client.first_child: bad query result"

let first_child_value c prefix =
  match query c (Types.First_child_value prefix) with
  | Types.First_child_value_is r -> r
  | Types.Got _ | Types.Children_are _ | Types.First_child_is _
  | Types.Child_count _ | Types.Watch_set ->
    failwith "Coord.Client.first_child_value: bad query result"

let count_children c prefix =
  match query c (Types.Count_children prefix) with
  | Types.Child_count n -> n
  | Types.Got _ | Types.Children_are _ | Types.First_child_is _
  | Types.First_child_value_is _ | Types.Watch_set ->
    failwith "Coord.Client.count_children: bad query result"

let watch_key c key = ignore (query c (Types.Watch_key key))
let watch_children c prefix = ignore (query c (Types.Watch_children prefix))

let await_change c ~timeout =
  Option.is_some (Des.Channel.recv_timeout c.event_channel ~timeout)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let pump c () =
  while not c.is_closed do
    let src, msg = Des.Channel.recv (Des.Net.inbox c.net c.session) in
    ignore src;
    match msg with
    | Types.Client_resp { req_id; response } ->
      (match Hashtbl.find_opt c.pending req_id with
       | Some deliver ->
         Hashtbl.remove c.pending req_id;
         deliver response
       | None -> () (* late reply to a request already retried *))
    | Types.Watch_fired event -> Des.Channel.send c.event_channel event
    | Types.Peer _ | Types.Client_req _ -> () (* not for clients *)
  done

let pinger c () =
  while not c.is_closed do
    Des.Proc.sleep (c.session_timeout /. 3.);
    if not c.is_closed then ignore (rpc c Types.Ping)
  done

let connect ~net ~id ~members ~config ?session_timeout ~name () =
  let known = List.sort compare members in
  if known = [] then invalid_arg "Coord.Client.connect: empty membership";
  let session_timeout =
    Option.value session_timeout ~default:config.Types.default_session_timeout
  in
  let c =
    {
      session = id;
      cname = name;
      net;
      known;
      config;
      session_timeout;
      leader_hint = List.hd known;
      next_req_id = 0;
      cmd_seq = 0;
      pending = Hashtbl.create 8;
      event_channel = Des.Channel.create ~name:(name ^ ".events") ();
      submit_tokens = Des.Channel.create ~name:(name ^ ".lock") ();
      procs = [];
      is_closed = false;
    }
  in
  Des.Channel.send c.submit_tokens ();
  let pump_proc = Des.Proc.spawn ~name:(name ^ ".pump") (sim c) (pump c) in
  let ping_proc = Des.Proc.spawn ~name:(name ^ ".ping") (sim c) (pinger c) in
  Log.debug (fun m -> m "%s: session %d opening" name id);
  c.procs <- [ pump_proc; ping_proc ];
  c

let close c =
  if not c.is_closed then begin
    c.is_closed <- true;
    List.iter Des.Proc.kill c.procs;
    c.procs <- []
  end

let disconnect c =
  if not c.is_closed then begin
    (match rpc c Types.Goodbye with
     | Types.Pong -> ()
     | _ -> ());
    close c
  end
