(* Building a new cloud service on TROPIC (the paper's §7 claim: "not
   simply a cloud service, but a general-purpose programming platform").

   This example defines a floating-IP service from scratch — a new entity
   kind, four actions with undo pairings, two integrity constraints and
   two stored procedures — without touching the core engine, and runs it
   transactionally next to TCloud in logical-only mode (a real deployment
   would add a device driver implementing the same four actions against a
   router API).

   Run with:  dune exec examples/custom_service.exe *)

let printf = Printf.printf

module Tree = Data.Tree
module Value = Data.Value

let ( let* ) r f = Result.bind r f

(* --- the data model of the new service --- *)

let pool_kind = "ipPool"
let ip_kind = "floatingIp"
let attr_capacity = "capacity"
let attr_bound_to = "bound_to"
let pool_path = Data.Path.v "/ipRoot/pool0"

(* --- actions: logical state transitions with undo pairings --- *)

let str_arg args i =
  match List.nth_opt args i with
  | Some (Value.Str s) -> Ok s
  | Some _ | None -> Error (Printf.sprintf "argument %d: expected string" i)

let ip_path path addr = Data.Path.child path addr

let allocate_ip tree path args =
  let* addr = str_arg args 0 in
  if Tree.mem tree (ip_path path addr) then
    Error (Printf.sprintf "address %s already allocated" addr)
  else
    Result.map_error Tree.error_to_string
      (Tree.insert tree (ip_path path addr) ~kind:ip_kind
         ~attrs:[ (attr_bound_to, Value.Null) ]
         ())

let release_ip tree path args =
  let* addr = str_arg args 0 in
  match Tree.get_attr tree (ip_path path addr) attr_bound_to with
  | None -> Error (Printf.sprintf "address %s not allocated" addr)
  | Some (Value.Str vm) -> Error (Printf.sprintf "%s still bound to %s" addr vm)
  | Some _ ->
    Result.map_error Tree.error_to_string (Tree.remove tree (ip_path path addr))

let bind_ip tree path args =
  let* addr = str_arg args 0 in
  let* vm = str_arg args 1 in
  match Tree.get_attr tree (ip_path path addr) attr_bound_to with
  | None -> Error (Printf.sprintf "address %s not allocated" addr)
  | Some (Value.Str owner) ->
    Error (Printf.sprintf "%s already bound to %s" addr owner)
  | Some _ ->
    Result.map_error Tree.error_to_string
      (Tree.set_attr tree (ip_path path addr) attr_bound_to (Value.Str vm))

let unbind_ip tree path args =
  let* addr = str_arg args 0 in
  match Tree.get_attr tree (ip_path path addr) attr_bound_to with
  | None -> Error (Printf.sprintf "address %s not allocated" addr)
  | Some Value.Null -> Error (Printf.sprintf "%s is not bound" addr)
  | Some _ ->
    Result.map_error Tree.error_to_string
      (Tree.set_attr tree (ip_path path addr) attr_bound_to Value.Null)

(* --- constraints: pool capacity; one address per VM --- *)

let pool_capacity =
  {
    Tropic.Constraints.name = "ip-pool-capacity";
    kind = pool_kind;
    check =
      (fun _tree _path node ->
        let used = Tree.Smap.cardinal node.Tree.children in
        match Tree.Smap.find_opt attr_capacity node.Tree.attrs with
        | Some (Value.Int capacity) when used <= capacity -> Ok ()
        | Some (Value.Int capacity) ->
          Error (Printf.sprintf "%d addresses exceed capacity %d" used capacity)
        | Some _ | None -> Error "pool has no capacity attribute");
  }

let one_ip_per_vm =
  {
    Tropic.Constraints.name = "one-floating-ip-per-vm";
    kind = pool_kind;
    check =
      (fun _tree _path node ->
        let owners = Hashtbl.create 8 in
        Tree.Smap.fold
          (fun addr (ip : Tree.node) acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
              (match Tree.Smap.find_opt attr_bound_to ip.Tree.attrs with
               | Some (Value.Str vm) ->
                 if Hashtbl.mem owners vm then
                   Error
                     (Printf.sprintf "VM %s holds %s and %s" vm
                        (Hashtbl.find owners vm) addr)
                 else begin
                   Hashtbl.add owners vm addr;
                   Ok ()
                 end
               | Some _ | None -> Ok ()))
          node.Tree.children (Ok ()));
  }

(* --- stored procedures --- *)

let assign_floating_ip ctx args =
  let pool =
    match str_arg args 0 with
    | Ok p -> Data.Path.v p
    | Error e -> Tropic.Dsl.abort e
  in
  let addr = List.nth args 1 and vm = List.nth args 2 in
  Tropic.Dsl.act ctx pool ~action:"allocateIp" ~args:[ addr ];
  Tropic.Dsl.act ctx pool ~action:"bindIp" ~args:[ addr; vm ]

let release_floating_ip ctx args =
  let pool =
    match str_arg args 0 with
    | Ok p -> Data.Path.v p
    | Error e -> Tropic.Dsl.abort e
  in
  let addr = List.nth args 1 in
  Tropic.Dsl.act ctx pool ~action:"unbindIp" ~args:[ addr ];
  Tropic.Dsl.act ctx pool ~action:"releaseIp" ~args:[ addr ]

let register_service env =
  let register name logical undo_of =
    Tropic.Dsl.register_action env
      { Tropic.Dsl.act_name = name; act_kind = pool_kind; logical; undo_of }
  in
  register "allocateIp" allocate_ip (fun _tree _path args ->
      Some ("releaseIp", args));
  register "releaseIp" release_ip (fun _tree _path _args -> None);
  register "bindIp" bind_ip (fun _tree _path args ->
      match args with addr :: _ -> Some ("unbindIp", [ addr ]) | [] -> None);
  register "unbindIp" unbind_ip (fun tree path args ->
      (* Rebinding needs the VM recorded before the unbind applied. *)
      match args with
      | [ (Value.Str addr_s) as addr ] ->
        (match Tree.get_attr tree (ip_path path addr_s) attr_bound_to with
         | Some (Value.Str vm) -> Some ("bindIp", [ addr; Value.Str vm ])
         | Some _ | None -> None)
      | _ -> None);
  List.iter
    (Tropic.Constraints.register (Tropic.Dsl.constraints_of env))
    [ pool_capacity; one_ip_per_vm ];
  Tropic.Dsl.register_proc env ~name:"assignFloatingIp" assign_floating_ip;
  Tropic.Dsl.register_proc env ~name:"releaseFloatingIp" release_floating_ip

(* --- run it --- *)

let () =
  let sim = Des.Sim.create ~seed:5 () in
  let inv = Tcloud.Setup.build Tcloud.Setup.small in
  (* Extend TCloud's environment and data model with the new service. *)
  register_service inv.Tcloud.Setup.env;
  let tree =
    match
      let* t = Tree.insert inv.Tcloud.Setup.tree (Data.Path.v "/ipRoot") ~kind:"ipRoot" () in
      Tree.insert t pool_path ~kind:pool_kind
        ~attrs:[ (attr_capacity, Value.Int 2) ]
        ()
    with
    | Ok t -> t
    | Error e -> failwith (Tree.error_to_string e)
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.mode = Tropic.Platform.Logical_only 0.01;
        controller_config = Tcloud.Setup.controller_config;
      }
      inv.Tcloud.Setup.env ~initial_tree:tree ~devices:inv.Tcloud.Setup.devices
      sim
  in
  let pool = Data.Path.to_string pool_path in
  let run what proc args =
    let state = Tropic.Platform.run_txn platform ~proc ~args in
    printf "%-52s -> %s\n" what (Tropic.Txn.state_to_string state)
  in
  ignore
    (Des.Proc.spawn ~name:"floating-ip" sim (fun () ->
         run "assign 10.0.0.1 to web1" "assignFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.1"; Value.Str "web1" ];
         (* Second address for the same VM: the one-ip-per-vm constraint
            aborts the whole transaction — including the allocation that
            preceded the bind (atomicity). *)
         run "assign 10.0.0.2 to web1 (violates one-per-vm)" "assignFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.2"; Value.Str "web1" ];
         run "assign 10.0.0.2 to db1" "assignFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.2"; Value.Str "db1" ];
         (* Pool capacity is 2: a third allocation is refused. *)
         run "assign 10.0.0.3 to cache1 (pool full)" "assignFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.3"; Value.Str "cache1" ];
         run "release 10.0.0.1" "releaseFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.1" ];
         run "assign 10.0.0.3 to cache1 (fits now)" "assignFloatingIp"
           [ Value.Str pool; Value.Str "10.0.0.3"; Value.Str "cache1" ];
         printf "\nFinal pool state:\n";
         match Tree.subtree (Tropic.Platform.logical_tree platform) pool_path with
         | Ok node -> Format.printf "%a@." Tree.pp node
         | Error e -> printf "error: %s\n" (Tree.error_to_string e)));
  ignore (Des.Sim.run ~until:600. sim);
  match Des.Sim.failures sim with
  | [] -> printf "\ncustom_service finished cleanly.\n"
  | (who, exn) :: _ ->
    printf "process %s crashed: %s\n" who (Printexc.to_string exn);
    exit 1
