(* Failure and recovery: the robustness and high-availability story.

   Three scenes:
   1. A device fails during the last step of a spawn: the transaction
      aborts and the undo chain leaves no trace on any device.
   2. A stalled transaction is TERM'ed by the operator mid-flight.
   3. The lead controller crashes with transactions in flight: a follower
      takes over (after the session timeout) and nothing is lost.

   Run with:  dune exec examples/failure_recovery.exe *)

let printf = Printf.printf

module Schema = Devices.Schema

let host i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i)

let () =
  let sim = Des.Sim.create ~seed:3 () in
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim)
      Tcloud.Setup.small
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.workers = 2;
        controller_config = Tcloud.Setup.controller_config;
        controller_session_timeout = 5.0;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  ignore
    (Des.Proc.spawn ~name:"failure-recovery" sim (fun () ->
         let _, compute0 = inv.Tcloud.Setup.computes.(0) in

         (* --- Scene 1: device fault at the last step --- *)
         printf "Scene 1: startVM will fail on host0's hypervisor.\n";
         Devices.Fault.fail_next
           (Devices.Device.faults (Devices.Compute.device compute0))
           ~action:Schema.act_start_vm;
         (match
            Tropic.Platform.run_txn platform ~proc:"spawnVM"
              ~args:
                (Tcloud.Procs.spawn_vm_args ~vm:"doomed" ~template:"base.img"
                   ~mem_mb:1024 ~storage:(storage 0) ~host:(host 0))
          with
          | Tropic.Txn.Aborted reason -> printf "  aborted: %s\n" reason
          | other -> printf "  unexpected %s\n" (Tropic.Txn.state_to_string other));
         let _, storage0 = inv.Tcloud.Setup.storages.(0) in
         printf
           "  residue check: VMs on host0 = [%s]; cloned images on storage0 = [%s]\n"
           (String.concat "; " (Devices.Compute.vm_names compute0))
           (String.concat "; "
              (List.filter
                 (fun n -> not (Devices.Storage.is_template storage0 n))
                 (Devices.Storage.image_names storage0)));

         (* --- Scene 2: TERM a transaction mid-flight --- *)
         printf "\nScene 2: TERM a spawn while the physical layer works.\n";
         let txn =
           Tropic.Platform.submit platform ~proc:"spawnVM"
             ~args:
               (Tcloud.Procs.spawn_vm_args ~vm:"victim" ~template:"base.img"
                  ~mem_mb:1024 ~storage:(storage 0) ~host:(host 0))
         in
         (* cloneImage alone takes ~4 s; signal at the 5 s mark. *)
         Des.Proc.sleep 5.;
         Tropic.Platform.signal platform txn Tropic.Proto.Term;
         (match Tropic.Platform.await platform txn with
          | Tropic.Txn.Aborted reason -> printf "  aborted: %s\n" reason
          | other -> printf "  %s\n" (Tropic.Txn.state_to_string other));
         printf "  residue check: VMs on host0 = [%s]\n"
           (String.concat "; " (Devices.Compute.vm_names compute0));

         (* --- Scene 3: controller crash with work in flight --- *)
         printf "\nScene 3: crash the lead controller under load.\n";
         let ids =
           List.init 4 (fun k ->
               Tropic.Platform.submit platform ~proc:"spawnVM"
                 ~args:
                   (Tcloud.Procs.spawn_vm_args
                      ~vm:(Printf.sprintf "ha%d" k)
                      ~template:"base.img" ~mem_mb:1024
                      ~storage:(storage (k mod 2))
                      ~host:(host k)))
         in
         let leader = Tropic.Platform.await_leader_controller platform in
         printf "  leader is %s; killing it now.\n" (Tropic.Controller.name leader);
         let index =
           let found = ref 0 in
           Array.iteri
             (fun i c -> if c == leader then found := i)
             (Tropic.Platform.controllers platform);
           !found
         in
         let t0 = Des.Proc.now () in
         Tropic.Platform.kill_controller platform index;
         let new_leader =
           let rec wait () =
             match Tropic.Platform.leader_controller platform with
             | Some c when c != leader -> c
             | Some _ | None ->
               Des.Proc.sleep 0.1;
               wait ()
           in
           wait ()
         in
         printf "  %s took over %.1f s after the crash.\n"
           (Tropic.Controller.name new_leader)
           (Des.Proc.now () -. t0);
         List.iteri
           (fun k id ->
             let state = Tropic.Platform.await platform id in
             printf "  txn ha%d -> %s\n" k (Tropic.Txn.state_to_string state))
           ids;
         printf "  no transaction lost.\n"));
  ignore (Des.Sim.run ~until:2_000. sim);
  match Des.Sim.failures sim with
  | [] -> printf "\nfailure_recovery finished cleanly.\n"
  | (who, exn) :: _ ->
    printf "process %s crashed: %s\n" who (Printexc.to_string exn);
    exit 1
