(* Reconciliation: keeping the logical and physical layers consistent in a
   volatile cloud (paper §4).

   Three kinds of volatility, three remedies:
   1. A compute host power-cycles — every VM is found stopped.  [repair]
      replays the logical truth onto the device (startVM for each).
   2. An operator deletes a VLAN out-of-band.  [reload] makes the logical
      layer adopt the physical truth.
   3. An undo fails mid-rollback, quarantining the host; transactions that
      touch it abort until a reload reconciles the layers.

   Run with:  dune exec examples/reconciliation.exe *)

let printf = Printf.printf

module Schema = Devices.Schema

let host i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i)

let () =
  let sim = Des.Sim.create ~seed:4 () in
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim)
      Tcloud.Setup.small
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.controller_config = Tcloud.Setup.controller_config;
      }
      inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  ignore
    (Des.Proc.spawn ~name:"reconciliation" sim (fun () ->
         let _, compute0 = inv.Tcloud.Setup.computes.(0) in
         let spawn vm =
           match
             Tropic.Platform.run_txn platform ~proc:"spawnVM"
               ~args:
                 (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img"
                    ~mem_mb:1024 ~storage:(storage 0) ~host:(host 0))
           with
           | Tropic.Txn.Committed -> ()
           | other ->
             failwith ("spawn failed: " ^ Tropic.Txn.state_to_string other)
         in
         spawn "app1";
         spawn "app2";

         (* --- 1. Power failure, then repair (logical -> physical) --- *)
         printf "Scene 1: host0 power-cycles; both VMs stop physically.\n";
         Devices.Compute.power_cycle compute0;
         let show_phys () =
           printf "  physical: app1=%s app2=%s\n"
             (match Devices.Compute.vm_state compute0 "app1" with
              | Some `Running -> "running" | Some `Stopped -> "stopped" | None -> "absent")
             (match Devices.Compute.vm_state compute0 "app2" with
              | Some `Running -> "running" | Some `Stopped -> "stopped" | None -> "absent")
         in
         show_phys ();
         printf "  repair(host0): replays the logical state onto the device\n";
         Tropic.Platform.repair platform (Tcloud.Setup.compute_path 0);
         Des.Proc.sleep 15.;
         show_phys ();

         (* --- 2. Out-of-band change, then reload (physical -> logical) --- *)
         printf "\nScene 2: operator creates VLAN 7, then deletes it via the CLI.\n";
         let switch = Data.Path.to_string (Tcloud.Setup.switch_path 0) in
         (match
            Tropic.Platform.run_txn platform ~proc:"createVlan"
              ~args:(Tcloud.Procs.create_vlan_args ~switch ~vlan:7 ~name:"tenantA")
          with
          | Tropic.Txn.Committed -> ()
          | other -> failwith (Tropic.Txn.state_to_string other));
         let _, switch0 = inv.Tcloud.Setup.switches.(0) in
         Devices.Network.force_remove_vlan switch0 7;
         let logical_vlans () =
           match
             Data.Tree.child_names
               (Tropic.Platform.logical_tree platform)
               (Tcloud.Setup.switch_path 0)
           with
           | Some names -> String.concat "; " names
           | None -> "?"
         in
         printf "  logical before reload: [%s]\n" (logical_vlans ());
         Tropic.Platform.reload platform (Tcloud.Setup.switch_path 0);
         Des.Proc.sleep 5.;
         printf "  logical after reload:  [%s]\n" (logical_vlans ());

         (* --- 3. Failed undo -> quarantine -> reload --- *)
         printf "\nScene 3: an undo fails; host0 is quarantined until reconciled.\n";
         let faults = Devices.Device.faults (Devices.Compute.device compute0) in
         Devices.Fault.fail_next faults ~action:Schema.act_start_vm;
         Devices.Fault.fail_next faults ~action:Schema.act_remove_vm;
         (match
            Tropic.Platform.run_txn platform ~proc:"spawnVM"
              ~args:
                (Tcloud.Procs.spawn_vm_args ~vm:"ghost" ~template:"base.img"
                   ~mem_mb:1024 ~storage:(storage 0) ~host:(host 0))
          with
          | Tropic.Txn.Failed reason -> printf "  txn failed: %s\n" reason
          | other -> printf "  %s\n" (Tropic.Txn.state_to_string other));
         let leader = Tropic.Platform.await_leader_controller platform in
         printf "  quarantined paths: [%s]\n"
           (String.concat "; "
              (List.map Data.Path.to_string (Tropic.Controller.quarantined leader)));
         (match
            Tropic.Platform.run_txn platform ~proc:"spawnVM"
              ~args:
                (Tcloud.Procs.spawn_vm_args ~vm:"probe-q" ~template:"base.img"
                   ~mem_mb:512 ~storage:(storage 1) ~host:(host 0))
          with
          | Tropic.Txn.Aborted reason -> printf "  txn on host0 refused: %s\n" reason
          | other -> printf "  %s\n" (Tropic.Txn.state_to_string other));
         printf "  reload(host0) + reload(storage0) adopt the physical truth\n";
         Tropic.Platform.reload platform (Tcloud.Setup.compute_path 0);
         Tropic.Platform.reload platform (Tcloud.Setup.storage_path 0);
         Des.Proc.sleep 5.;
         printf "  quarantined paths now: [%s]\n"
           (String.concat "; "
              (List.map Data.Path.to_string (Tropic.Controller.quarantined leader)));
         match
           Tropic.Platform.run_txn platform ~proc:"spawnVM"
             ~args:
               (Tcloud.Procs.spawn_vm_args ~vm:"app3" ~template:"base.img"
                  ~mem_mb:1024 ~storage:(storage 0) ~host:(host 0))
         with
         | Tropic.Txn.Committed -> printf "  host0 serves transactions again.\n"
         | other -> printf "  %s\n" (Tropic.Txn.state_to_string other)));
  ignore (Des.Sim.run ~until:2_000. sim);
  match Des.Sim.failures sim with
  | [] -> printf "\nreconciliation finished cleanly.\n"
  | (who, exn) :: _ ->
    printf "process %s crashed: %s\n" who (Printexc.to_string exn);
    exit 1
