(* Quickstart: bring up a complete TROPIC deployment (coordination
   ensemble, three controllers, workers, simulated devices), spawn a VM
   through the transactional API, and look at both layers.

   Run with:  dune exec examples/quickstart.exe *)

let printf = Printf.printf

let () =
  (* Everything runs inside one deterministic simulation. *)
  let sim = Des.Sim.create ~seed:1 () in

  (* A small TCloud: 4 compute hosts (xen/kvm), 2 storage hosts, 1 switch.
     [`Process] makes device operations take realistic simulated time. *)
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim)
      Tcloud.Setup.small
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.controller_config = Tcloud.Setup.controller_config;
      }
      inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in

  ignore
    (Des.Proc.spawn ~name:"quickstart" sim (fun () ->
         let host = Data.Path.to_string (Tcloud.Setup.compute_path 0) in
         let storage = Data.Path.to_string (Tcloud.Setup.storage_path 0) in

         printf "Spawning VM 'web1' (1 GB) on %s ...\n" host;
         let t0 = Des.Proc.now () in
         let state =
           Tropic.Platform.run_txn platform ~proc:"spawnVM"
             ~args:
               (Tcloud.Procs.spawn_vm_args ~vm:"web1" ~template:"base.img"
                  ~mem_mb:1024 ~storage ~host)
         in
         printf "  -> %s after %.1f simulated seconds\n"
           (Tropic.Txn.state_to_string state)
           (Des.Proc.now () -. t0);

         (* The logical layer: TROPIC's view of the world. *)
         let host_path = Tcloud.Setup.compute_path 0 in
         (match
            Data.Tree.subtree (Tropic.Platform.logical_tree platform) host_path
          with
          | Ok node ->
            printf "\nLogical view of %s:\n" host;
            Format.printf "%a@." Data.Tree.pp node
          | Error e -> printf "error: %s\n" (Data.Tree.error_to_string e));

         (* The physical layer: what the device actually holds. *)
         let _, compute = inv.Tcloud.Setup.computes.(0) in
         printf "Physical view: VMs on the hypervisor = [%s], state of web1 = %s\n"
           (String.concat "; " (Devices.Compute.vm_names compute))
           (match Devices.Compute.vm_state compute "web1" with
            | Some `Running -> "running"
            | Some `Stopped -> "stopped"
            | None -> "absent");

         (* A transaction that violates a constraint aborts before touching
            any device: this host has 8 GB and web1 already uses 1 GB. *)
         printf "\nTrying to spawn an 8 GB VM on the same host ...\n";
         (match
            Tropic.Platform.run_txn platform ~proc:"spawnVM"
              ~args:
                (Tcloud.Procs.spawn_vm_args ~vm:"toobig" ~template:"base.img"
                   ~mem_mb:8192 ~storage ~host)
          with
          | Tropic.Txn.Aborted reason -> printf "  -> aborted: %s\n" reason
          | other ->
            printf "  -> unexpected: %s\n" (Tropic.Txn.state_to_string other));

         (* Clean up transactionally. *)
         printf "\nDestroying web1 ...\n";
         let state =
           Tropic.Platform.run_txn platform ~proc:"destroyVM"
             ~args:(Tcloud.Procs.destroy_vm_args ~host ~storage ~vm:"web1")
         in
         printf "  -> %s; VMs on hypervisor now = [%s]\n"
           (Tropic.Txn.state_to_string state)
           (String.concat "; " (Devices.Compute.vm_names compute))));

  ignore (Des.Sim.run ~until:600. sim);
  match Des.Sim.failures sim with
  | [] -> printf "\nquickstart finished cleanly.\n"
  | (who, exn) :: _ ->
    printf "process %s crashed: %s\n" who (Printexc.to_string exn);
    exit 1
