(* VM life cycle and concurrency: the hosting-provider scenario.

   Demonstrates the full operation mix (spawn / stop / start / migrate /
   destroy), the hypervisor-compatibility service rule, and what happens
   when concurrent transactions contend for the same host: lock-based
   deferral, and constraint-based aborts when capacity runs out.

   Run with:  dune exec examples/vm_lifecycle.exe *)

let printf = Printf.printf

let host i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i)

let () =
  let sim = Des.Sim.create ~seed:2 () in
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim)
      { Tcloud.Setup.small with Tcloud.Setup.compute_hosts = 6 }
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.workers = 3;
        controller_config = Tcloud.Setup.controller_config;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let run what proc args =
    let state = Tropic.Platform.run_txn platform ~proc ~args in
    printf "%-45s -> %s\n" what (Tropic.Txn.state_to_string state);
    state
  in
  ignore
    (Des.Proc.spawn ~name:"lifecycle" sim (fun () ->
         (* hosts 0,2,4 run xen; hosts 1,3,5 run kvm. *)
         ignore
           (run "spawn db1 on host0 (xen)" "spawnVM"
              (Tcloud.Procs.spawn_vm_args ~vm:"db1" ~template:"base.img"
                 ~mem_mb:2048 ~storage:(storage 0) ~host:(host 0)));
         ignore
           (run "stop db1" "stopVM"
              (Tcloud.Procs.stop_vm_args ~host:(host 0) ~vm:"db1"));
         ignore
           (run "start db1 again" "startVM"
              (Tcloud.Procs.start_vm_args ~host:(host 0) ~vm:"db1"));

         (* The §6.2 VM-type rule: xen -> kvm migration is refused. *)
         ignore
           (run "migrate db1 host0(xen) -> host1(kvm)" "migrateVM"
              (Tcloud.Procs.migrate_vm_args ~src:(host 0) ~dst:(host 1)
                 ~vm:"db1"));
         (* Same hypervisor type works (host2 is xen). *)
         ignore
           (run "migrate db1 host0(xen) -> host2(xen)" "migrateVM"
              (Tcloud.Procs.migrate_vm_args ~src:(host 0) ~dst:(host 2)
                 ~vm:"db1"));

         (* Concurrency: ten 2 GB spawns race for host4 (8 GB capacity).
            Locks serialize them; the memory constraint admits exactly
            four minus what's already there. *)
         printf "\nRacing 10 x 2 GB spawns against host4 (8 GB):\n";
         let ids =
           List.init 10 (fun k ->
               Tropic.Platform.submit platform ~proc:"spawnVM"
                 ~args:
                   (Tcloud.Procs.spawn_vm_args
                      ~vm:(Printf.sprintf "race%02d" k)
                      ~template:"base.img" ~mem_mb:2048 ~storage:(storage 0)
                      ~host:(host 4)))
         in
         let committed, aborted =
           List.fold_left
             (fun (ok, no) id ->
               match Tropic.Platform.await platform id with
               | Tropic.Txn.Committed -> (ok + 1, no)
               | _ -> (ok, no + 1))
             (0, 0) ids
         in
         printf "  committed=%d aborted=%d (capacity admits exactly 4)\n"
           committed aborted;
         let leader = Tropic.Platform.await_leader_controller platform in
         let stats = Tropic.Controller.stats leader in
         printf "  controller saw %d lock-conflict deferrals, %d aborts\n"
           stats.Tropic.Controller.deferrals stats.Tropic.Controller.aborted;

         (* Tear down one racer. *)
         ignore
           (run "\ndestroy race00" "destroyVM"
              (Tcloud.Procs.destroy_vm_args ~host:(host 4)
                 ~storage:(storage 0) ~vm:"race00"))));
  ignore (Des.Sim.run ~until:2_000. sim);
  match Des.Sim.failures sim with
  | [] -> printf "\nvm_lifecycle finished cleanly.\n"
  | (who, exn) :: _ ->
    printf "process %s crashed: %s\n" who (Printexc.to_string exn);
    exit 1
