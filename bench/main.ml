(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus Bechamel micro-benchmarks of the engine operations that
   back the §6.2/§6.3 measurements.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- sched        # contention bench -> BENCH_sched.json
     dune exec bench/main.exe -- overload     # shed-vs-queue -> BENCH_overload.json
     dune exec bench/main.exe -- shard        # shard scaling -> BENCH_shard.json
     dune exec bench/main.exe -- throughput   # saturation + group commit -> BENCH_throughput.json
     dune exec bench/main.exe -- table1|fig3|fig4|fig5|safety|robustness|
                                 ha|hosting|scale|ablation
   TROPIC_BENCH_QUICK=1 shrinks the long runs. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let host0 = Data.Path.to_string (Tcloud.Setup.compute_path 0)
let host2 = Data.Path.to_string (Tcloud.Setup.compute_path 2)
let storage0 = Data.Path.to_string (Tcloud.Setup.storage_path 0)

let micro_tests () =
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 2 }
  in
  let inv = Tcloud.Setup.build size in
  let env = inv.Tcloud.Setup.env in
  let tree = inv.Tcloud.Setup.tree in
  let bare_env =
    let env = Tropic.Dsl.create_env () in
    Tcloud.Actions.register_all env;
    Tcloud.Procs.register_all env;
    env
  in
  let spawn_args =
    Tcloud.Procs.spawn_vm_args ~vm:"bench" ~template:"base.img" ~mem_mb:1024
      ~storage:storage0 ~host:host0
  in
  let migrate_args =
    Tcloud.Procs.migrate_vm_args ~src:host0 ~dst:host2
      ~vm:(Tcloud.Setup.prepop_vm_name ~host:0 ~index:0)
  in
  let simulate env args proc () =
    match Tropic.Logical.simulate env ~tree ~proc ~args with
    | Ok _ -> ()
    | Error reason -> failwith reason
  in
  let spawn_result =
    match Tropic.Logical.simulate env ~tree ~proc:"spawnVM" ~args:spawn_args with
    | Ok r -> r
    | Error reason -> failwith reason
  in
  let migrate_result =
    match
      Tropic.Logical.simulate env ~tree ~proc:"migrateVM" ~args:migrate_args
    with
    | Ok r -> r
    | Error reason -> failwith reason
  in
  let rollback (r : Tropic.Logical.success) () =
    match
      Tropic.Logical.rollback env ~tree:r.Tropic.Logical.new_tree
        ~log:r.Tropic.Logical.log
    with
    | Ok _ -> ()
    | Error (_, reason) -> failwith reason
  in
  let registry = Tropic.Dsl.constraints_of env in
  let host_path = Tcloud.Setup.compute_path 0 in
  let locks = Mglock.create () in
  let lock_set = spawn_result.Tropic.Logical.locks in
  let txn_record =
    let txn =
      Tropic.Txn.make ~id:1 ~proc:"spawnVM" ~args:spawn_args ~submitted_at:0.
    in
    txn.Tropic.Txn.log <- spawn_result.Tropic.Logical.log;
    txn.Tropic.Txn.locks <- lock_set;
    Tropic.Txn.to_string txn
  in
  let coord_store = Coord.Store.create () in
  let counter = ref 0 in
  [
    (* Table 1 / §6.1: the logical work of one spawn transaction. *)
    Test.make ~name:"simulate-spawnVM (5 actions)"
      (Staged.stage (simulate env spawn_args "spawnVM"));
    Test.make ~name:"simulate-migrateVM"
      (Staged.stage (simulate env migrate_args "migrateVM"));
    (* §6.2: constraint checking. *)
    Test.make ~name:"simulate-spawnVM-no-constraints"
      (Staged.stage (simulate bare_env spawn_args "spawnVM"));
    Test.make ~name:"constraint-check-path"
      (Staged.stage (fun () ->
           ignore (Tropic.Constraints.check_path registry tree host_path)));
    (* §6.3: rollback. *)
    Test.make ~name:"rollback-spawnVM" (Staged.stage (rollback spawn_result));
    Test.make ~name:"rollback-migrateVM" (Staged.stage (rollback migrate_result));
    (* §3.1.3: concurrency control. *)
    Test.make ~name:"mglock-acquire-release"
      (Staged.stage (fun () ->
           (match Mglock.try_acquire locks ~txn:1 lock_set with
            | Ok () -> ()
            | Error _ -> failwith "unexpected lock conflict");
           ignore (Mglock.release_all locks ~txn:1)));
    (* §2.3: transaction-record persistence codec. *)
    Test.make ~name:"txn-record-encode+decode"
      (Staged.stage (fun () ->
           match Tropic.Txn.of_string txn_record with
           | Ok _ -> ()
           | Error reason -> failwith reason));
    (* Coordination state machine. *)
    Test.make ~name:"coord-store-apply-create"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Coord.Store.apply coord_store
                (Coord.Types.Create
                   {
                     session = 1;
                     req = !counter;
                     key = "/bench/item-";
                     value = "x";
                     ephemeral = false;
                     sequential = true;
                   }))));
  ]

let run_micro () =
  Experiments.Common.section
    "Micro-benchmarks (Bechamel): engine operations backing §6.2/§6.3";
  let tests = Test.make_grouped ~name:"tropic" (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> t
          | Some _ | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-45s %15s\n" "operation" "time/run";
  List.iter
    (fun (name, ns) ->
      let time =
        if ns < 1_000. then Printf.sprintf "%.0f ns" ns
        else if ns < 1_000_000. then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.2f ms" (ns /. 1e6)
      in
      Printf.printf "%-45s %15s\n" name time)
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Contention micro-benchmark: rescan vs wake-on-release (BENCH_sched.json)

   N transactions over K shared subtrees; each wants a guard R on its
   subtree root plus W on its own object, so transactions on the same
   subtree serialize (the R and the object's ancestor IW join to W on the
   root).  Arrivals are one burst; completions happen in start order.  The
   "rescan" policy re-attempts every deferred transaction on every
   completion — the scheduler this PR replaces — while the "wake" policy
   re-attempts only the waiters [Mglock.release_all] reports.  The metric
   is [Mglock.acquire_attempts] per committed transaction. *)

type sched_point = {
  sp_subtrees : int;
  sp_attempts : int;
  sp_per_commit : float;
  sp_wakeups : int;
  sp_spurious : int;
}

let sched_lock_set ~subtrees i =
  let sub = Data.Path.v (Printf.sprintf "/bench/sub%03d" (i mod subtrees)) in
  [
    (sub, Mglock.R);
    (Data.Path.child sub (Printf.sprintf "obj%04d" i), Mglock.W);
  ]

let run_sched_policy ~wake ~txns:n ~subtrees =
  let locks = Mglock.create () in
  let running = Queue.create () in
  let deferred = ref [] in
  let wakeups = ref 0 and spurious = ref 0 in
  let attempt i =
    match Mglock.try_acquire locks ~txn:i (sched_lock_set ~subtrees i) with
    | Ok () ->
      Queue.add i running;
      true
    | Error c ->
      if wake then Mglock.wait locks ~txn:i ~on:c.Mglock.path;
      false
  in
  for i = 1 to n do
    if not (attempt i) then deferred := i :: !deferred
  done;
  deferred := List.rev !deferred;
  while not (Queue.is_empty running) do
    let woken = Mglock.release_all locks ~txn:(Queue.pop running) in
    if wake then begin
      wakeups := !wakeups + List.length woken;
      List.iter
        (fun i ->
          if attempt i then deferred := List.filter (fun j -> j <> i) !deferred
          else incr spurious)
        woken
    end
    else deferred := List.filter (fun i -> not (attempt i)) !deferred
  done;
  assert (!deferred = []);
  {
    sp_subtrees = subtrees;
    sp_attempts = Mglock.acquire_attempts locks;
    sp_per_commit = float_of_int (Mglock.acquire_attempts locks) /. float_of_int n;
    sp_wakeups = !wakeups;
    sp_spurious = !spurious;
  }

let run_sched_bench () =
  let quick = Experiments.Common.quick_mode () in
  let txns = if quick then 64 else 256 in
  let levels = [ 2; 8; 16 ] in
  Experiments.Common.section
    (Printf.sprintf
       "Scheduler contention: rescan vs wake-on-release (%d txns)" txns);
  let points =
    List.map
      (fun subtrees ->
        let rescan = run_sched_policy ~wake:false ~txns ~subtrees in
        let wake = run_sched_policy ~wake:true ~txns ~subtrees in
        (rescan, wake))
      levels
  in
  let ratio (rescan, wake) =
    float_of_int rescan.sp_attempts /. float_of_int wake.sp_attempts
  in
  Printf.printf "%10s %12s %20s %18s %10s %10s %8s\n" "subtrees" "txns/subtree"
    "rescan att/commit" "wake att/commit" "wakeups" "spurious" "ratio";
  List.iter
    (fun ((rescan, wake) as pair) ->
      Printf.printf "%10d %12d %20.2f %18.2f %10d %10d %7.1fx\n"
        rescan.sp_subtrees
        (txns / rescan.sp_subtrees)
        rescan.sp_per_commit wake.sp_per_commit wake.sp_wakeups
        wake.sp_spurious (ratio pair))
    points;
  let best = List.fold_left (fun a b -> if ratio b > ratio a then b else a)
      (List.hd points) (List.tl points)
  in
  let out = "BENCH_sched.json" in
  let oc = open_out out in
  let point_json ((rescan, wake) as pair) =
    Printf.sprintf
      "    { \"subtrees\": %d, \"txns_per_subtree\": %d,\n\
      \      \"rescan_attempts\": %d, \"rescan_attempts_per_commit\": %.3f,\n\
      \      \"wake_attempts\": %d, \"wake_attempts_per_commit\": %.3f,\n\
      \      \"wakeups\": %d, \"spurious_wakeups\": %d, \"attempts_ratio\": %.3f }"
      rescan.sp_subtrees (txns / rescan.sp_subtrees) rescan.sp_attempts
      rescan.sp_per_commit wake.sp_attempts wake.sp_per_commit wake.sp_wakeups
      wake.sp_spurious (ratio pair)
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"sched-contention\",\n\
    \  \"generated_by\": \"bench/main.exe sched\",\n\
    \  \"quick\": %b,\n\
    \  \"txns\": %d,\n\
    \  \"points\": [\n%s\n  ],\n\
    \  \"high_contention\": { \"subtrees\": %d, \"attempts_ratio\": %.3f, \
     \"meets_2x_target\": %b }\n\
     }\n"
    quick txns
    (String.concat ",\n" (List.map point_json points))
    (fst best).sp_subtrees (ratio best)
    (ratio best >= 2.);
  close_out oc;
  Printf.printf "wrote %s (high-contention attempts ratio %.1fx)\n\n%!" out
    (ratio best)

(* ------------------------------------------------------------------ *)
(* Overload micro-benchmark: shed vs queue (BENCH_overload.json)

   A single deterministic worker fed faster than it serves — the storm
   regime admission control exists for.  Requests arrive every
   [arrival_gap] and take [service] to process, FIFO.  The "queue"
   policy admits everything, so sojourn time grows linearly for as long
   as the storm lasts; the "shed" policy fast-aborts arrivals once the
   queue hits the high watermark and resumes below the low one, trading
   a bounded p99 for explicit `Overload aborts.  The metric is the
   latency tail of the requests actually served. *)

type overload_point = {
  ov_mode : string;
  ov_served : int;
  ov_shed : int;
  ov_p50 : float;
  ov_p90 : float;
  ov_p99 : float;
  ov_max : float;
}

let run_overload_policy ~shed ~requests ~arrival_gap ~service ~high ~low =
  let cdf = Metrics.Cdf.create () in
  let pending = Queue.create () in (* completion times of admitted, FIFO *)
  let sheds = ref 0 in
  let shedding = ref false in
  let last_done = ref 0. in
  for i = 0 to requests - 1 do
    let arrival = float_of_int i *. arrival_gap in
    while (not (Queue.is_empty pending)) && Queue.peek pending <= arrival do
      ignore (Queue.pop pending)
    done;
    let depth = Queue.length pending in
    let admit =
      if not shed then true
      else if !shedding then
        if depth <= low then begin
          shedding := false;
          true
        end
        else false
      else if depth >= high then begin
        shedding := true;
        false
      end
      else true
    in
    if admit then begin
      let start = Float.max arrival !last_done in
      let finish = start +. service in
      last_done := finish;
      Queue.add finish pending;
      Metrics.Cdf.add cdf (finish -. arrival)
    end
    else incr sheds
  done;
  {
    ov_mode = (if shed then "shed" else "queue");
    ov_served = Metrics.Cdf.count cdf;
    ov_shed = !sheds;
    ov_p50 = Metrics.Cdf.quantile cdf 0.5;
    ov_p90 = Metrics.Cdf.quantile cdf 0.9;
    ov_p99 = Metrics.Cdf.quantile cdf 0.99;
    ov_max = Metrics.Cdf.max_value cdf;
  }

let run_overload_bench () =
  let quick = Experiments.Common.quick_mode () in
  let requests = if quick then 500 else 2_000 in
  (* 25% overload: arrivals every 0.8 s, service 1 s.  Watermarks match
     the chaos harness's admission config (high 48, low 32). *)
  let arrival_gap = 0.8 and service = 1.0 in
  let high = 48 and low = 32 in
  Experiments.Common.section
    (Printf.sprintf
       "Overload: shed vs queue (%d requests, arrivals %.1fx service rate)"
       requests (service /. arrival_gap));
  let queue_pt =
    run_overload_policy ~shed:false ~requests ~arrival_gap ~service ~high ~low
  in
  let shed_pt =
    run_overload_policy ~shed:true ~requests ~arrival_gap ~service ~high ~low
  in
  Printf.printf "%8s %8s %8s %10s %10s %10s %10s\n" "mode" "served" "shed"
    "p50" "p90" "p99" "max";
  List.iter
    (fun p ->
      Printf.printf "%8s %8d %8d %9.1fs %9.1fs %9.1fs %9.1fs\n" p.ov_mode
        p.ov_served p.ov_shed p.ov_p50 p.ov_p90 p.ov_p99 p.ov_max)
    [ queue_pt; shed_pt ];
  (* Shedding keeps the tail near the high watermark's worth of service
     time; queueing lets it grow with the storm. *)
  let p99_bound = float_of_int (high + 1) *. service in
  let bounded_p99 =
    shed_pt.ov_p99 <= p99_bound && shed_pt.ov_p99 < queue_pt.ov_p99
  in
  let out = "BENCH_overload.json" in
  let oc = open_out out in
  let point_json p =
    Printf.sprintf
      "    { \"mode\": %S, \"served\": %d, \"shed\": %d,\n\
      \      \"p50_s\": %.3f, \"p90_s\": %.3f, \"p99_s\": %.3f, \"max_s\": \
       %.3f }"
      p.ov_mode p.ov_served p.ov_shed p.ov_p50 p.ov_p90 p.ov_p99 p.ov_max
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"overload-shed-vs-queue\",\n\
    \  \"generated_by\": \"bench/main.exe overload\",\n\
    \  \"quick\": %b,\n\
    \  \"requests\": %d,\n\
    \  \"arrival_gap_s\": %.3f,\n\
    \  \"service_s\": %.3f,\n\
    \  \"queue_high\": %d,\n\
    \  \"queue_low\": %d,\n\
    \  \"modes\": [\n%s\n  ],\n\
    \  \"headline\": { \"shed_p99_s\": %.3f, \"queue_p99_s\": %.3f, \
     \"p99_bound_s\": %.3f, \"bounded_p99\": %b }\n\
     }\n"
    quick requests arrival_gap service high low
    (String.concat ",\n" (List.map point_json [ queue_pt; shed_pt ]))
    shed_pt.ov_p99 queue_pt.ov_p99 p99_bound bounded_p99;
  close_out oc;
  Printf.printf "wrote %s (shed p99 %.1fs vs queue p99 %.1fs, bounded: %b)\n\n%!"
    out shed_pt.ov_p99 queue_pt.ov_p99 bounded_p99

(* ------------------------------------------------------------------ *)
(* Shard-scaling macro-benchmark (BENCH_shard.json)

   The same deployment — H compute hosts, each with one prepopulated VM —
   run at 1/2/4/8 resource-tree shards, each shard bringing its own
   controller and worker pool (the per-shard replica-group deployment the
   sharded platform models).  The workload is strictly single-shard:
   every host's driver toggles its VM start/stop, and start/stop lock
   only the host's subtree, so no transaction crosses shards and the
   measured quantity is pure pipeline parallelism — how committed-txn/s
   grows as the singleton controller bottleneck is split.  Virtual
   (simulated) seconds, so the numbers are deterministic. *)

type shard_point = {
  sh_shards : int;
  sh_committed : int;
  sh_failed : int;
  sh_virtual_s : float;
  sh_txn_per_s : float;
}

let run_shard_point ~shards ~hosts ~toggles =
  let sim = Des.Sim.create ~seed:42 () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = hosts;
      prepopulated_vms_per_host = 1;
    }
  in
  let inv = Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.controllers = 1;
      workers = 2;
      shards;
      mode = Tropic.Platform.Full;
      controller_config = Tcloud.Setup.controller_config;
      trace = None;
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let committed = ref 0 and failed = ref 0 and live = ref 0 in
  let elapsed = ref 0. in
  let driver h () =
    let host = Data.Path.to_string (Tcloud.Setup.compute_path h) in
    let vm = Tcloud.Setup.prepop_vm_name ~host:h ~index:0 in
    let toggle proc args =
      match Tropic.Platform.run_txn platform ~proc ~args with
      | Tropic.Txn.Committed -> incr committed
      | _ -> incr failed
    in
    for _ = 1 to toggles do
      toggle "startVM" (Tcloud.Procs.start_vm_args ~host ~vm);
      toggle "stopVM" (Tcloud.Procs.stop_vm_args ~host ~vm)
    done;
    decr live
  in
  ignore
    (Des.Proc.spawn ~name:"shard-bench" sim (fun () ->
         for sid = 0 to shards - 1 do
           ignore (Tropic.Platform.await_shard_leader platform sid)
         done;
         let t0 = Des.Sim.now sim in
         live := hosts;
         for h = 0 to hosts - 1 do
           ignore
             (Des.Proc.spawn ~name:(Printf.sprintf "driver-%d" h) sim (driver h))
         done;
         while !live > 0 do
           Des.Proc.sleep 0.5
         done;
         elapsed := Des.Sim.now sim -. t0));
  ignore (Des.Sim.run ~until:100_000. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     failwith (Printf.sprintf "%s crashed: %s" who (Printexc.to_string exn)));
  {
    sh_shards = shards;
    sh_committed = !committed;
    sh_failed = !failed;
    sh_virtual_s = !elapsed;
    sh_txn_per_s =
      (if !elapsed > 0. then float_of_int !committed /. !elapsed else 0.);
  }

let run_shard_bench () =
  let quick = Experiments.Common.quick_mode () in
  let hosts = if quick then 8 else 16 in
  let toggles = if quick then 2 else 4 in
  Experiments.Common.section
    (Printf.sprintf
       "Shard scaling: committed-txn/s vs shard count (%d hosts, %d toggles \
        each)"
       hosts (2 * toggles));
  let points =
    List.map
      (fun shards -> run_shard_point ~shards ~hosts ~toggles)
      [ 1; 2; 4; 8 ]
  in
  let base = (List.hd points).sh_txn_per_s in
  let speedup p = if base > 0. then p.sh_txn_per_s /. base else 0. in
  Printf.printf "%8s %12s %10s %14s %10s\n" "shards" "committed" "failed"
    "virtual s" "txn/s";
  List.iter
    (fun p ->
      Printf.printf "%8d %12d %10d %14.1f %9.2f (%.2fx)\n" p.sh_shards
        p.sh_committed p.sh_failed p.sh_virtual_s p.sh_txn_per_s (speedup p))
    points;
  let rate n = (List.nth points n).sh_txn_per_s in
  let monotonic_1_to_4 = rate 1 >= rate 0 && rate 2 >= rate 1 in
  let out = "BENCH_shard.json" in
  let oc = open_out out in
  let point_json p =
    Printf.sprintf
      "    { \"shards\": %d, \"committed\": %d, \"failed\": %d,\n\
      \      \"virtual_s\": %.2f, \"txn_per_s\": %.3f, \"speedup\": %.3f }"
      p.sh_shards p.sh_committed p.sh_failed p.sh_virtual_s p.sh_txn_per_s
      (speedup p)
  in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"shard-scaling\",\n\
    \  \"generated_by\": \"bench/main.exe shard\",\n\
    \  \"quick\": %b,\n\
    \  \"hosts\": %d,\n\
    \  \"toggles_per_host\": %d,\n\
    \  \"points\": [\n%s\n  ],\n\
    \  \"headline\": { \"speedup_2\": %.3f, \"speedup_4\": %.3f, \
     \"speedup_8\": %.3f, \"monotonic_1_to_4\": %b }\n\
     }\n"
    quick hosts (2 * toggles)
    (String.concat ",\n" (List.map point_json points))
    (speedup (List.nth points 1))
    (speedup (List.nth points 2))
    (speedup (List.nth points 3))
    monotonic_1_to_4;
  close_out oc;
  Printf.printf "wrote %s (2 shards %.2fx, 4 shards %.2fx, monotonic: %b)\n\n%!"
    out
    (speedup (List.nth points 1))
    (speedup (List.nth points 2))
    monotonic_1_to_4

(* ------------------------------------------------------------------ *)
(* Saturation throughput macro-benchmark (BENCH_throughput.json)

   A closed-loop load generator: N client sessions, each with zero think
   time, toggling its own VM start/stop on its own host — the single-shard
   hosting mix, so there is no lock contention and the ceiling is the
   coordination write path (every persist, queue item and record delete is
   a replicated command charged to the leader's op-service station).  The
   ladder raises N until committed-txn/s plateaus; each level reports the
   rate plus the driver-observed commit-latency p50/p99.  Run once with
   group commit (per-txn persists coalesced into one grouped append per
   quorum round) and once with the [group_commit:false] ablation, whose
   per-command station charge is the pre-batching baseline the headline
   ratio is measured against. *)

type tp_point = {
  tp_sessions : int;
  tp_committed : int;
  tp_other : int;  (* aborted/failed — expected 0 on this workload *)
  tp_virtual_s : float;
  tp_rate : float;
  tp_p50 : float;
  tp_p99 : float;
  tp_flushes : int;
  tp_mean_batch : float;
  tp_max_batch : int;
}

let run_throughput_point ~group_commit ~sessions ~ops =
  let sim = Des.Sim.create ~seed:42 () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = sessions;
      prepopulated_vms_per_host = 1;
    }
  in
  let inv = Tcloud.Setup.build ~rng:(Des.Sim.rng sim) size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.controllers = 1;
      workers = 4;
      shards = 1;
      (* Physical replay stubbed to a fixed small delay: the measured
         ceiling must be the coordination write path, not device time. *)
      mode = Tropic.Platform.Logical_only 0.002;
      (* Disk-backed log: 5 ms fsync per append round (both arms), so the
         op-service station — not the LAN round trip — is the ceiling the
         batcher amortizes.  The flush timer stays well under the fsync. *)
      coord_config =
        {
          Coord.Types.default_config with
          Coord.Types.group_commit;
          op_service_time = 0.005;
          group_timeout = 0.001;
        };
      controller_config = Tcloud.Setup.controller_config;
      submit_clients = min sessions 16;
      (* Overlap the controller's burst persists through a session pool so
         they ride shared group-commit batches (both arms get the pool;
         only the batcher turns the overlap into fewer fsync rounds). *)
      persist_clients = 8;
      trace = None;
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let committed = ref 0 and other = ref 0 and live = ref 0 in
  let elapsed = ref 0. in
  let lat = Metrics.Cdf.create () in
  let driver h () =
    let host = Data.Path.to_string (Tcloud.Setup.compute_path h) in
    let vm = Tcloud.Setup.prepop_vm_name ~host:h ~index:0 in
    let one proc args =
      let t0 = Des.Sim.now sim in
      (match Tropic.Platform.run_txn platform ~proc ~args with
       | Tropic.Txn.Committed ->
         incr committed;
         Metrics.Cdf.add lat (Des.Sim.now sim -. t0)
       | _ -> incr other)
    in
    for _ = 1 to ops do
      one "startVM" (Tcloud.Procs.start_vm_args ~host ~vm);
      one "stopVM" (Tcloud.Procs.stop_vm_args ~host ~vm)
    done;
    decr live
  in
  ignore
    (Des.Proc.spawn ~name:"throughput-bench" sim (fun () ->
         ignore (Tropic.Platform.await_shard_leader platform 0);
         let t0 = Des.Sim.now sim in
         live := sessions;
         for h = 0 to sessions - 1 do
           ignore
             (Des.Proc.spawn ~name:(Printf.sprintf "session-%d" h) sim
                (driver h))
         done;
         while !live > 0 do
           Des.Proc.sleep 0.25
         done;
         elapsed := Des.Sim.now sim -. t0));
  ignore (Des.Sim.run ~until:100_000. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     failwith (Printf.sprintf "%s crashed: %s" who (Printexc.to_string exn)));
  let g = Tropic.Platform.group_commit_stats platform in
  {
    tp_sessions = sessions;
    tp_committed = !committed;
    tp_other = !other;
    tp_virtual_s = !elapsed;
    tp_rate =
      (if !elapsed > 0. then float_of_int !committed /. !elapsed else 0.);
    tp_p50 = Metrics.Cdf.quantile lat 0.5;
    tp_p99 = Metrics.Cdf.quantile lat 0.99;
    tp_flushes = g.Coord.Types.flushes;
    tp_mean_batch =
      (if g.Coord.Types.flushes = 0 then 0.
       else
         float_of_int g.Coord.Types.batched_cmds
         /. float_of_int g.Coord.Types.flushes);
    tp_max_batch = g.Coord.Types.max_batch;
  }

let run_throughput_bench () =
  let quick = Experiments.Common.quick_mode () in
  let ladder = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  (* Closed loop with a fixed per-ladder transaction budget, so high
     concurrency levels don't multiply the run length. *)
  let budget = if quick then 96 else 512 in
  Experiments.Common.section
    (Printf.sprintf
       "Saturation throughput: committed-txn/s vs closed-loop sessions \
        (budget %d txns/level)"
       budget);
  let run_ladder ~group_commit =
    List.map
      (fun sessions ->
        let ops = max 2 (budget / (2 * sessions)) in
        run_throughput_point ~group_commit ~sessions ~ops)
      ladder
  in
  let on_pts = run_ladder ~group_commit:true in
  let off_pts = run_ladder ~group_commit:false in
  let print_ladder label pts =
    Printf.printf "%s\n%10s %10s %8s %12s %10s %10s %10s %9s\n" label
      "sessions" "committed" "other" "virtual s" "txn/s" "p50 ms" "p99 ms"
      "batch";
    List.iter
      (fun p ->
        Printf.printf "%10d %10d %8d %12.2f %10.2f %10.2f %10.2f %8.1f\n"
          p.tp_sessions p.tp_committed p.tp_other p.tp_virtual_s p.tp_rate
          (1e3 *. p.tp_p50) (1e3 *. p.tp_p99) p.tp_mean_batch)
      pts
  in
  print_ladder "group commit ON" on_pts;
  print_ladder "group commit OFF (ablation)" off_pts;
  let last l = List.nth l (List.length l - 1) in
  let penultimate l = List.nth l (List.length l - 2) in
  let top_on = last on_pts and top_off = last off_pts in
  (* Saturation: the last doubling of sessions buys < 25% more rate. *)
  let plateau = top_on.tp_rate < 1.25 *. (penultimate on_pts).tp_rate in
  let ratio =
    if top_off.tp_rate > 0. then top_on.tp_rate /. top_off.tp_rate else 0.
  in
  let out = "BENCH_throughput.json" in
  let oc = open_out out in
  let point_json p =
    Printf.sprintf
      "    { \"sessions\": %d, \"committed\": %d, \"other\": %d,\n\
      \      \"virtual_s\": %.3f, \"txn_per_s\": %.3f,\n\
      \      \"commit_p50_s\": %.5f, \"commit_p99_s\": %.5f,\n\
      \      \"flushes\": %d, \"mean_batch\": %.2f, \"max_batch\": %d }"
      p.tp_sessions p.tp_committed p.tp_other p.tp_virtual_s p.tp_rate
      p.tp_p50 p.tp_p99 p.tp_flushes p.tp_mean_batch p.tp_max_batch
  in
  let ladder_json pts = String.concat ",\n" (List.map point_json pts) in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"throughput-saturation\",\n\
    \  \"generated_by\": \"bench/main.exe throughput\",\n\
    \  \"quick\": %b,\n\
    \  \"txn_budget_per_level\": %d,\n\
    \  \"group_commit_on\": [\n%s\n  ],\n\
    \  \"group_commit_off\": [\n%s\n  ],\n\
    \  \"headline\": { \"saturating_sessions\": %d, \"on_txn_per_s\": %.3f, \
     \"off_txn_per_s\": %.3f, \"speedup\": %.3f, \"meets_3x_target\": %b, \
     \"saturated\": %b }\n\
     }\n"
    quick budget (ladder_json on_pts) (ladder_json off_pts)
    top_on.tp_sessions top_on.tp_rate top_off.tp_rate ratio (ratio >= 3.)
    plateau;
  close_out oc;
  Printf.printf
    "wrote %s (at %d sessions: on %.1f txn/s vs off %.1f txn/s = %.2fx, \
     saturated: %b)\n\n%!"
    out top_on.tp_sessions top_on.tp_rate top_off.tp_rate ratio plateau

(* ------------------------------------------------------------------ *)
(* Experiment harness entries *)

let quick () = Experiments.Common.quick_mode ()

let perf_cfg () =
  if quick () then Experiments.Perf.quick_config
  else Experiments.Perf.default_config

let run_fig45 () =
  Experiments.Perf.print_fig4_fig5 ~multipliers:[ 1; 2; 3; 4; 5 ] (perf_cfg ())

let run_safety () =
  Experiments.Safety.print
    (Experiments.Safety.run ~iterations:(if quick () then 2_000 else 20_000) ())

let run_robustness () =
  Experiments.Robustness.print
    (Experiments.Robustness.run
       ~iterations:(if quick () then 2_000 else 20_000)
       ~injections:(if quick () then 8 else 20)
       ())

let run_ha () = Experiments.Ha.print (Experiments.Ha.run ())

let run_hosting () =
  Experiments.Hosting_run.print
    (Experiments.Hosting_run.run
       ~duration:(if quick () then 120. else 300.)
       ())

let run_scale () =
  Experiments.Scale.print
    (Experiments.Scale.run
       ~host_counts:(if quick () then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ])
       ())

let run_ablation () = Experiments.Ablation.print (Experiments.Ablation.run ())

let run_all () =
  Experiments.Table1.print ();
  run_micro ();
  run_sched_bench ();
  run_overload_bench ();
  run_shard_bench ();
  run_throughput_bench ();
  Experiments.Perf.print_fig3 ();
  run_fig45 ();
  run_safety ();
  run_robustness ();
  run_ha ();
  run_hosting ();
  run_scale ();
  run_ablation ()

let () =
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; "micro" ] -> run_micro ()
  | [ _; "sched" ] -> run_sched_bench ()
  | [ _; "overload" ] -> run_overload_bench ()
  | [ _; "shard" ] -> run_shard_bench ()
  | [ _; "throughput" ] -> run_throughput_bench ()
  | [ _; "table1" ] -> Experiments.Table1.print ()
  | [ _; "fig3" ] -> Experiments.Perf.print_fig3 ()
  | [ _; ("fig4" | "fig5") ] -> run_fig45 ()
  | [ _; "safety" ] -> run_safety ()
  | [ _; "robustness" ] -> run_robustness ()
  | [ _; "ha" ] -> run_ha ()
  | [ _; "hosting" ] -> run_hosting ()
  | [ _; "scale" ] -> run_scale ()
  | [ _; "ablation" ] -> run_ablation ()
  | _ ->
    prerr_endline
      "usage: main.exe \
       [all|micro|sched|overload|shard|throughput|table1|fig3|fig4|fig5|safety|robustness|ha|hosting|scale|ablation]";
    exit 2
